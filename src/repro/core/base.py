"""Interface between the engine and an interstitial job source."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Tuple

from repro.jobs import Job
from repro.sim.state import ClusterState

#: Sentinel for sources that never throttle (shared so the engine's
#: per-pass ``throttled_until`` read costs one attribute lookup, not a
#: float parse).
_NEVER_THROTTLED = float("-inf")

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.base import Scheduler


class InterstitialSource(abc.ABC):
    """Supplies interstitial jobs to start in leftover capacity.

    The engine consults the source once per scheduling pass, *after* the
    native policy has started everything it can — the paper's
    "meta-backfilled into the available processors from a low-priority
    queue after no more of the native jobs can be backfilled".
    """

    @abc.abstractmethod
    def offer(
        self, t: float, cluster: ClusterState, scheduler: "Scheduler"
    ) -> List[Job]:
        """Return interstitial jobs to start immediately at ``t``.

        The returned jobs must jointly fit in ``cluster.free_cpus``; the
        engine starts them in order.
        """

    @property
    @abc.abstractmethod
    def exhausted(self) -> bool:
        """True once the source will never produce another job."""

    @property
    def preemptible(self) -> bool:
        """Whether running interstitial jobs may be killed to make room
        for a blocked native job.

        The paper's baseline is strictly non-preemptive (killed work is
        wasted because there is no checkpoint/restart); the preemptible
        mode is an ablation quantifying what zero native impact costs in
        wasted interstitial cycles.
        """
        return False

    @property
    def elastic(self) -> bool:
        """Whether this source's running jobs may be *resized* by the
        engine (DESIGN §16).

        An elastic source's malleable jobs (those carrying a
        non-degenerate ``[min_cpus, max_cpus]`` range) are shrunk —
        instead of killed — to seat a blocked native head job, and grown
        back into idle capacity via :meth:`grow_requests`.  Orthogonal
        to :attr:`preemptible`: a source may be both, in which case the
        engine shrinks first and kills only for the remaining deficit.
        """
        return False

    def grow_requests(
        self, t: float, cluster: ClusterState, scheduler: "Scheduler"
    ) -> List[Tuple[Job, int]]:
        """Width increases to apply to running malleable jobs at ``t``.

        Called once per scheduling pass (after :meth:`offer`) when the
        source is :attr:`elastic`.  Each ``(job, new_cpus)`` entry must
        name a currently running job of this source with
        ``job.cpus < new_cpus <= job.max_cpus``, and the total growth
        must fit in ``cluster.free_cpus``; the engine applies the
        resizes in order, re-scaling each job's remaining runtime.
        """
        return []

    def on_shrunk(self, job: Job, old_cpus: int, t: float) -> None:
        """Notification that the engine shrank ``job`` from
        ``old_cpus`` to ``job.cpus`` at ``t`` to seat a blocked native.

        No work is lost (the remaining runtime was re-scaled), so the
        default is a no-op; sources may track shrink statistics.
        """

    def on_preempted(self, jobs: List[Job], t: float) -> None:
        """Notification that ``jobs`` were killed at ``t``.

        Sources that track remaining work should re-credit the killed
        jobs (their work was lost and must be redone).  Called both for
        preemption (making room for a blocked native head job) and for
        node-failure kills (:mod:`repro.faults`).
        """

    def on_fault(self, t: float, cpus: int) -> None:
        """Notification that ``cpus`` processors crashed at ``t``.

        Called for every FAILURE event, whether or not any interstitial
        job was killed by it.  Sources may use it to degrade gracefully
        (e.g. throttle submission while the machine is flaky).
        """

    @property
    def throttled_until(self) -> float:
        """Time until which the source suppresses submission after
        recent faults (``-inf`` when it never throttles).

        The engine reads this to attribute empty offers to graceful
        degradation in the observability trace (``fault_throttle``
        records) rather than to a lack of work or room.
        """
        return _NEVER_THROTTLED
