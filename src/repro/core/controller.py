"""The Figure-1 interstitial submission algorithm.

Pseudo-code from the paper::

    if( Queue( firstJob ).canRun() ) { submit( firstJob ); }
    else { backfill( nativeJobs ); }
    nInterstitialJobs = Floor( nodesAvailable / interstitialJobSize );
    if( jobsInQueue == 0 ) {
        submit( nInterstitialJobs );
    } else if( backFillWallTime > interstitialRuntime ) {
        /* backfillWallTime is when the first job in the queue can run
           based on the expected finishing time of jobs currently
           running */
        submit( nInterstitialJobs );
    }

The native half (first two lines) is the engine's native scheduling
pass; this controller implements the interstitial half.  It is
*fallible* exactly the way the paper's realistic experiments are: the
``backFillWallTime`` test uses user runtime estimates, so interstitial
jobs can poach CPUs a native job would have used had its predecessors
finished as early as they actually did.

The controller also implements the two §4.3.2 variants:

* **continual** feeding (``n_jobs=None``): an unbounded stream, cut off
  by the engine's horizon;
* **limited** feeding (``max_utilization``): submit only while the
  machine utilization *including the new interstitial jobs* stays below
  the cap — the §4.3.2.2 "Limiting Interstitial Jobs" policy.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.core.base import InterstitialSource
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject, Job, JobKind
from repro.machines import Machine
from repro.sim.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.base import Scheduler


@dataclass(frozen=True)
class ControllerDecision:
    """One Figure-1 decision point (recorded when ``record_decisions``).

    ``reason`` is one of ``no_room`` (no hole wide enough),
    ``head_imminent`` (the backfillWallTime gate blocked submission),
    ``cap_blocked`` (the §4.3.2.2 utilization cap blocked it),
    ``fault_throttled`` (recent node failures crossed the graceful-
    degradation threshold) or ``submitted`` (``n_submitted`` jobs were
    handed to the engine).
    """

    time: float
    free_cpus: int
    queue_length: int
    n_submitted: int
    reason: str


class InterstitialController(InterstitialSource):
    """Submits jobs of one interstitial project per the Figure-1 rule.

    Parameters
    ----------
    machine:
        Machine the jobs will run on (fixes the per-job runtime via the
        project's 1 GHz normalization).
    project:
        The interstitial project specification (CPUs/job, runtime).
    n_jobs:
        Total jobs to run; ``None`` reads the count from the project;
        ``math.inf`` (or passing ``continual=True``) feeds continually.
    continual:
        Convenience flag for the unbounded §4.3.2 mode.
    max_utilization:
        Optional cap: never let instantaneous machine utilization
        (busy / total CPUs, interstitial included) exceed this value at
        submission time (§4.3.2.2).
    start_time:
        The controller stays dormant before this time — used to drop a
        project into the job stream "at a random time" (§3).
    preemptible:
        Ablation mode: allow the engine to kill running interstitial
        jobs when a native job is blocked.  Killed jobs are re-credited
        to the remaining count (their work must be redone) and tracked
        in :attr:`n_preempted`.
    checkpointing:
        Ablation refinement of ``preemptible``: killed jobs checkpoint
        their progress, so only their *remaining* runtime is
        resubmitted instead of the whole job.  The paper's baseline has
        no checkpoint/restart — that absence is exactly what creates
        "breakage in time" (§4.2) — so this mode measures what
        checkpointing would recover.
    throttle_after_failures:
        Graceful degradation under fault injection: stop submitting
        when at least this many node failures were observed within
        ``throttle_window`` seconds, and resume once
        ``throttle_quiet_period`` seconds pass without a failure.
        ``None`` (default) disables throttling.  Blocked decision
        points are recorded with reason ``fault_throttled``.
    throttle_window:
        Width of the recent-failure observation window, in seconds.
    throttle_quiet_period:
        Failure-free time required before submission resumes, in
        seconds.
    """

    #: Shortest restart fragment worth resubmitting (seconds); smaller
    #: remainders are treated as completed work.
    MIN_RESTART_RUNTIME = 1.0

    def __init__(
        self,
        machine: Machine,
        project: InterstitialProject,
        n_jobs: Optional[int] = None,
        continual: bool = False,
        max_utilization: Optional[float] = None,
        start_time: float = 0.0,
        preemptible: bool = False,
        checkpointing: bool = False,
        record_decisions: bool = False,
        throttle_after_failures: Optional[int] = None,
        throttle_window: float = 3600.0,
        throttle_quiet_period: float = 3600.0,
    ) -> None:
        if max_utilization is not None and not (0.0 < max_utilization <= 1.0):
            raise ConfigurationError(
                f"max_utilization must be in (0, 1], got {max_utilization}"
            )
        if throttle_after_failures is not None and throttle_after_failures < 1:
            raise ConfigurationError(
                f"throttle_after_failures must be >= 1, "
                f"got {throttle_after_failures}"
            )
        if throttle_window <= 0 or throttle_quiet_period <= 0:
            raise ConfigurationError(
                "throttle_window and throttle_quiet_period must be positive"
            )
        if start_time < 0.0:
            raise ConfigurationError(
                f"start_time must be >= 0, got {start_time}"
            )
        # Widths are checked where the spec first meets a machine, so a
        # too-wide project (nominal or elastic max) fails here with a
        # clear error instead of deep inside the engine.
        project.validate_for(machine)
        self.machine = machine
        self.project = project
        self.runtime = project.runtime_on(machine)
        self.max_utilization = max_utilization
        self.start_time = start_time
        if continual:
            self._remaining: float = math.inf
        else:
            self._remaining = float(n_jobs if n_jobs is not None
                                    else project.n_jobs)
        if self._remaining <= 0:
            raise ConfigurationError("controller needs at least one job")
        if checkpointing and not preemptible:
            raise ConfigurationError(
                "checkpointing only applies to preemptible controllers"
            )
        self.submitted: List[Job] = []
        self._preemptible = preemptible
        self._checkpointing = checkpointing
        self.n_preempted = 0
        #: Remaining runtimes (seconds) of checkpointed fragments
        #: awaiting resubmission, drained (FIFO) ahead of fresh jobs.
        self._restart_queue: Deque[float] = deque()
        #: CPU-seconds of killed work preserved by checkpointing.
        self.work_preserved_cpu_s = 0.0
        self.throttle_after_failures = throttle_after_failures
        self.throttle_window = throttle_window
        self.throttle_quiet_period = throttle_quiet_period
        #: Times of recently observed node failures (for throttling).
        self._recent_faults: Deque[float] = deque()
        #: Submission is suspended until this time (graceful
        #: degradation); -inf when not throttled.
        self._throttled_until = -math.inf
        #: Node failures observed via :meth:`on_fault`.
        self.n_faults_seen = 0
        #: Decision trace (None unless ``record_decisions``); continual
        #: runs make hundreds of thousands of decisions, so this is
        #: opt-in.
        self.decisions: Optional[List[ControllerDecision]] = (
            [] if record_decisions else None
        )

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._remaining <= 0 and not self._restart_queue

    @property
    def n_submitted(self) -> int:
        """Jobs handed to the engine so far."""
        return len(self.submitted)

    @property
    def preemptible(self) -> bool:
        return self._preemptible

    def on_preempted(self, jobs: List[Job], t: float) -> None:
        """Account for killed jobs.

        Without checkpointing the whole job must rerun (full
        re-credit).  With checkpointing only the unfinished remainder
        is queued for restart; completed work is preserved.
        """
        self.n_preempted += len(jobs)
        if not self._checkpointing:
            if math.isfinite(self._remaining):
                self._remaining += len(jobs)
            return
        for job in jobs:
            killed_at = job.finish_time if job.finish_time is not None else t
            started_at = (
                job.start_time if job.start_time is not None else killed_at
            )
            elapsed = max(0.0, killed_at - started_at)
            self.work_preserved_cpu_s += job.cpus * elapsed
            remainder = job.runtime - elapsed
            if remainder >= self.MIN_RESTART_RUNTIME:
                self._restart_queue.append(remainder)

    def on_fault(self, t: float, cpus: int) -> None:
        """Observe a node failure; arm the submission throttle when the
        recent failure count crosses the configured threshold."""
        self.n_faults_seen += 1
        if self.throttle_after_failures is None:
            return
        self._recent_faults.append(t)
        cutoff = t - self.throttle_window
        while self._recent_faults and self._recent_faults[0] < cutoff:
            self._recent_faults.popleft()
        if len(self._recent_faults) >= self.throttle_after_failures:
            self._throttled_until = t + self.throttle_quiet_period

    @property
    def throttled_until(self) -> float:
        """Time until which fault throttling blocks submission
        (``-inf`` when the throttle has never armed)."""
        return self._throttled_until

    def offer(
        self, t: float, cluster: ClusterState, scheduler: "Scheduler"
    ) -> List[Job]:
        if t < self.start_time or self.exhausted:
            return []
        if t < self._throttled_until:
            self._log(t, cluster, scheduler, 0, "fault_throttled")
            return []
        size = self.project.cpus_per_job
        count = cluster.free_cpus // size
        if count <= 0:
            self._log(t, cluster, scheduler, 0, "no_room")
            return []
        # Figure-1 gate: only feed when the native queue is empty or the
        # head job cannot (by estimates) start within one interstitial
        # runtime, so our jobs finish before it needs the CPUs.
        if scheduler.queue_length > 0:
            wall = scheduler.head_start_estimate(t, cluster)
            if wall - t <= self.runtime:
                self._log(t, cluster, scheduler, 0, "head_imminent")
                return []
        if self.max_utilization is not None:
            budget = (
                math.floor(self.max_utilization * cluster.total_cpus)
                - cluster.busy_cpus
            )
            count = min(count, budget // size)
            if count <= 0:
                self._log(t, cluster, scheduler, 0, "cap_blocked")
                return []
        # Checkpointed fragments restart ahead of fresh jobs.
        jobs: List[Job] = []
        while self._restart_queue and len(jobs) < count:
            remainder = self._restart_queue.popleft()
            jobs.append(
                Job(
                    cpus=size,
                    runtime=remainder,
                    estimate=remainder,
                    submit_time=t,
                    user=self.project.user,
                    group=self.project.group,
                    kind=JobKind.INTERSTITIAL,
                )
            )
        fresh = count - len(jobs)
        if math.isfinite(self._remaining):
            fresh = min(fresh, int(self._remaining))
        if fresh > 0:
            jobs.extend(
                self.project.make_jobs(self.machine, fresh, submit_time=t)
            )
            self._remaining -= fresh
        self.submitted.extend(jobs)
        self._log(t, cluster, scheduler, len(jobs), "submitted")
        return jobs

    # ------------------------------------------------------------------
    def _log(
        self,
        t: float,
        cluster: ClusterState,
        scheduler: "Scheduler",
        n_submitted: int,
        reason: str,
    ) -> None:
        if self.decisions is None:
            return
        self.decisions.append(
            ControllerDecision(
                time=t,
                free_cpus=cluster.free_cpus,
                queue_length=scheduler.queue_length,
                n_submitted=n_submitted,
                reason=reason,
            )
        )
