"""Omniscient interstitial packing (paper §4.1).

"Interstitial jobs are submitted with omniscience about when the native
jobs will be run and when they will finish.  This means the interstitial
project has no effect on the native jobs" — all native jobs run exactly
as they would alone.

We realize that definition *by construction*: first simulate the native
trace alone, freeze its busy profile, and greedily pack the project's
identical jobs into the remaining *headroom* step function, never
exceeding it.  A placement of ``k`` jobs at time ``t`` is legal iff the
headroom minus interstitial CPUs already in use stays at or above
``k * cpus_per_job`` over the whole window ``[t, t + runtime)``; by
induction over placement instants this guarantees total usage never
exceeds the machine (see ``tests/core/test_omniscient.py`` for the
machine-checked invariant).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.jobs import InterstitialProject
from repro.machines import Machine
from repro.sim.profile import StepFunction
from repro.sim.results import SimResult

#: Absolute tolerance for float headroom comparisons (CPU counts are
#: integers, so anything below half a CPU is noise).
_EPS = 1e-6


def add_step_functions(a: StepFunction, b: StepFunction) -> StepFunction:
    """Pointwise sum of two step functions."""
    times = np.union1d(a.times, b.times)
    if times.size == 0:
        return StepFunction.constant(a.base + b.base)
    values = a.sample(times) + b.sample(times)
    return StepFunction(times, values, base=a.base + b.base)


def headroom_profile(native_result: SimResult) -> StepFunction:
    """Free-CPU step function of a native-only run: machine size minus
    native busy CPUs minus outage-down CPUs."""
    total = float(native_result.machine.cpus)
    occupied = add_step_functions(
        native_result.busy_profile(), native_result.down_profile()
    )
    return occupied.negate_from(total)


@dataclass(frozen=True)
class OmniscientPacking:
    """Result of packing one project omnisciently.

    ``placements`` lists (start_time, job_count) batches; identical jobs
    in a batch share start and finish times.
    """

    project: InterstitialProject
    machine: Machine
    start_time: float
    placements: Tuple[Tuple[float, int], ...]
    finish_time: float

    @property
    def makespan(self) -> float:
        """Project makespan: last job finish minus project start."""
        return self.finish_time - self.start_time

    @property
    def n_jobs(self) -> int:
        """Total jobs placed (always the full project)."""
        return sum(count for _, count in self.placements)

    @property
    def runtime(self) -> float:
        """Per-job runtime on this machine."""
        return self.project.runtime_on(self.machine)

    def usage_profile(self) -> StepFunction:
        """Interstitial busy-CPU step function implied by the packing."""
        width = self.project.cpus_per_job
        r = self.runtime
        times: List[float] = []
        deltas: List[float] = []
        for start, count in self.placements:
            times.append(start)
            deltas.append(count * width)
            times.append(start + r)
            deltas.append(-count * width)
        return StepFunction.from_deltas(times, deltas, base=0.0)


def pack_continual(
    native_result: SimResult,
    cpus_per_job: int,
    runtime_s: float,
    horizon: float,
) -> Tuple[int, List[Tuple[float, int]]]:
    """Zero-impact harvest ceiling: how many (``cpus_per_job`` x
    ``runtime_s``) jobs fit into the native headroom with submissions
    allowed until ``horizon``.

    This is the omniscient counterpart of the continual §4.3.2 runs —
    an upper bound on what the fallible Figure-1 controller can push
    through, used by the harvest-efficiency ablation.  Returns the job
    count and the (start, count) placements.
    """
    machine = native_result.machine
    if cpus_per_job > machine.cpus:
        raise ConfigurationError(
            f"jobs of {cpus_per_job} CPUs exceed {machine.name}"
        )
    if runtime_s <= 0 or horizon <= 0:
        raise ConfigurationError("runtime_s and horizon must be positive")

    headroom = headroom_profile(native_result)
    width = float(cpus_per_job)
    t = 0.0
    in_use = 0.0
    finish_heap: List[Tuple[float, float]] = []
    placements: List[Tuple[float, int]] = []
    total = 0
    bp_times = headroom.times

    while t < horizon:
        while finish_heap and finish_heap[0][0] <= t:
            in_use -= heapq.heappop(finish_heap)[1]
        window_min = headroom.min_over(t, t + runtime_s)
        spare = window_min - in_use
        k = (
            int(math.floor((spare + _EPS) / width))
            if spare >= width - _EPS
            else 0
        )
        if k > 0:
            placements.append((t, k))
            total += k
            in_use += k * width
            heapq.heappush(finish_heap, (t + runtime_s, k * width))
        idx = int(np.searchsorted(bp_times, t, side="right"))
        next_bp = bp_times[idx] if idx < bp_times.size else math.inf
        next_fin = finish_heap[0][0] if finish_heap else math.inf
        t_next = min(next_bp, next_fin)
        if math.isinf(t_next):
            break
        t = t_next
    return total, placements


def pack_project(
    native_result: SimResult,
    project: InterstitialProject,
    start_time: float = 0.0,
) -> OmniscientPacking:
    """Pack ``project`` into the headroom of a native-only run.

    Greedy earliest-fit: at every decision instant (headroom breakpoint
    or interstitial batch completion) start as many jobs as the window
    minimum allows.  Runs past the end of the native trace if needed —
    the machine is then empty and the tail drains at full width, exactly
    like a real project outliving the log.
    """
    machine = native_result.machine
    if project.cpus_per_job > machine.cpus:
        raise ConfigurationError(
            f"project jobs ({project.cpus_per_job} CPUs) exceed "
            f"{machine.name} ({machine.cpus} CPUs)"
        )
    if start_time < 0.0:
        raise ConfigurationError(f"start_time must be >= 0: {start_time}")

    headroom = headroom_profile(native_result)
    width = float(project.cpus_per_job)
    r = project.runtime_on(machine)
    remaining = project.n_jobs

    t = start_time
    in_use = 0.0
    finish_heap: List[Tuple[float, float]] = []  # (finish, cpus)
    placements: List[Tuple[float, int]] = []
    last_finish = start_time
    bp_times = headroom.times

    while remaining > 0:
        while finish_heap and finish_heap[0][0] <= t:
            in_use -= heapq.heappop(finish_heap)[1]
        window_min = headroom.min_over(t, t + r)
        spare = window_min - in_use
        k = int(math.floor((spare + _EPS) / width)) if spare >= width - _EPS else 0
        k = min(k, remaining)
        if k > 0:
            placements.append((t, k))
            remaining -= k
            in_use += k * width
            heapq.heappush(finish_heap, (t + r, k * width))
            last_finish = t + r
        if remaining == 0:
            break
        idx = int(np.searchsorted(bp_times, t, side="right"))
        next_bp = bp_times[idx] if idx < bp_times.size else math.inf
        next_fin = finish_heap[0][0] if finish_heap else math.inf
        t_next = min(next_bp, next_fin)
        if math.isinf(t_next):
            # Flat headroom forever and nothing running: the machine is
            # in steady state and we still cannot place — impossible
            # given the width check above, so this is a genuine bug.
            raise SimulationError(
                "omniscient packing stalled with jobs remaining"
            )
        t = t_next

    return OmniscientPacking(
        project=project,
        machine=machine,
        start_time=start_time,
        placements=tuple(placements),
        finish_time=last_finish,
    )
