"""Command-line interface.

* ``repro <experiment> [--scale NAME]`` — run one experiment (or
  ``all``) and print its paper-style table;
* ``repro list`` — enumerate the available experiments;
* ``repro report [--scale NAME] [--output PATH] [--jobs N]`` —
  regenerate every table and figure into one markdown report, fanning
  out over N worker processes;
* ``repro profile <experiment>`` — run one experiment (or ``all``)
  serially with the engine's phase timers attached and print hot-phase
  wall-clock, aggregated event counters, and store behavior;
* ``repro serve [--host --port --workers N --bulk-cap C --journal F
  --request-timeout S] [--join HOST:PORT]`` — run the long-lived
  simulation service (see :mod:`repro.service`): interactive requests
  dispatch to a worker pool immediately, bulk requests are admitted
  only into utilization gaps below the cap, with response caching,
  request coalescing and graceful SIGTERM drain.  ``--journal`` makes
  accepted bulk work durable (replayed after a crash);
  ``--request-timeout`` bounds each dispatch, replacing hung workers
  and retrying their requests.  ``--join HOST:PORT`` federates this
  daemon into the fleet coordinated by the daemon at that address
  (consistent-hash routing, peer caching, work-stealing bulk sweeps;
  see :mod:`repro.service.fleet`).  ``--tenant-quota
  INFLIGHT[:SHARE]`` bounds each tenant's in-flight dispatches and
  bulk-queue share; ``--autoscale MIN:MAX`` lets the daemon grow and
  shrink its worker pool against the bulk-cap utilization signal
  (see :mod:`repro.service.tenancy`).

``--store DIR`` persists every simulation run content-addressed under
DIR, so repeated invocations (and parallel workers) reuse each other's
results.  ``--check-invariants`` runs every simulation with the
engine's accounting validator enabled (see
``SimConfig.check_invariants``) — slower, but any cluster-state
inconsistency aborts with a diagnostic snapshot instead of corrupting
results silently.  ``--trace FILE`` streams one structured JSONL
record per engine event to FILE (see :mod:`repro.obs`); traces of a
seeded configuration are byte-deterministic.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.experiments.config import SCALES, current_scale
from repro.experiments.context import RunContext
from repro.experiments.registry import EXPERIMENTS, REPORT_ORDER
from repro.experiments.report import profile_experiments, write_report
from repro.obs import JsonlRecorder
from repro.store import RunStore
from repro.version import repro_version


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Interstitial "
            "Computing: Utilizing Spare Cycles on Supercomputers' "
            "(CLUSTER 2003)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "list", "report", "profile", "serve"],
        help=(
            "experiment to run ('all' runs everything, 'list' "
            "enumerates them, 'report' writes a markdown report, "
            "'profile' times an experiment's engine phases, 'serve' "
            "runs the simulation service daemon)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro_version()}",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "experiment to profile (only with 'profile'; accepts any "
            "experiment name or 'all')"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scaling preset (default: REPRO_BENCH_SCALE or 'default')",
    )
    parser.add_argument(
        "--output",
        default="repro_report.md",
        help="output path for 'report' (default: repro_report.md)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for 'report' (default 1 = serial; the "
            "report is byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "directory for the content-addressed run store (default: "
            "in-memory only; parallel reports use a temporary one)"
        ),
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "validate engine cluster accounting after every event "
            "batch (slower; aborts with a diagnostic on violation)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write one JSONL record per engine event to FILE "
            "(byte-deterministic for a seeded config; incompatible "
            "with 'report'/'list' and with --store, which would skip "
            "cached simulations)"
        ),
    )
    serving = parser.add_argument_group(
        "serving options (only with 'serve')"
    )
    serving.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for 'serve' (default: 127.0.0.1)",
    )
    serving.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port for 'serve' (default: 8765; 0 picks a free port)",
    )
    serving.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker-pool processes for 'serve' (default: 2)",
    )
    serving.add_argument(
        "--bulk-cap",
        type=float,
        default=0.9,
        metavar="C",
        help=(
            "utilization cap in (0, 1] for bulk admission: a bulk "
            "request is dispatched only while (busy+1)/workers <= C; "
            "1.0 disables the policy (default: 0.9)"
        ),
    )
    serving.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bulk queue bound before 429-style backpressure "
            "(default: 64)"
        ),
    )
    serving.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help=(
            "durable bulk-request journal (JSONL WAL): accepted bulk "
            "requests are fsynced here before admission and replayed "
            "on the next 'serve' start, so a crashed or SIGKILLed "
            "daemon resumes its queued work (default: no journal)"
        ),
    )
    serving.add_argument(
        "--join",
        default=None,
        metavar="HOST:PORT",
        help=(
            "join the serving fleet coordinated by the daemon at "
            "HOST:PORT: this daemon registers there, is assigned a "
            "replica id, and serves its share of the consistent-hash "
            "ring (requests routed by content address, bulk sweeps "
            "work-stolen across replicas; default: coordinate a new "
            "fleet)"
        ),
    )
    serving.add_argument(
        "--tenant-quota",
        default=None,
        metavar="INFLIGHT[:SHARE]",
        help=(
            "per-tenant admission quota: at most INFLIGHT dispatches "
            "in the pool per tenant (bulk over it defers in queue, "
            "interactive over it bounces 429), and at most "
            "SHARE (0, 1] of the bulk queue per tenant before its "
            "bulk arrivals bounce 429 (default SHARE: 0.5; default: "
            "no quota)"
        ),
    )
    serving.add_argument(
        "--autoscale",
        default=None,
        metavar="MIN:MAX",
        help=(
            "cap-aware worker autoscaling: grow the worker pool "
            "toward MAX while bulk work is deferred by the "
            "utilization cap, shrink toward MIN when the queue is "
            "empty and utilization is low (default: fixed pool of "
            "--workers)"
        ),
    )
    serving.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request worker deadline: a dispatch running longer "
            "is treated as hung, its pool is replaced and the request "
            "retried with backoff, dead-lettered after the retry "
            "budget (default: no deadline)"
        ),
    )
    return parser


def _experiment_names(selector: str) -> list:
    """Expand an experiment selector ('all' or a single name)."""
    if selector == "all":
        return list(REPORT_ORDER)
    return [selector]


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.target is not None and args.experiment != "profile":
        parser.error("a target experiment is only valid with 'profile'")
    if args.trace is not None:
        if args.experiment in ("report", "profile", "serve"):
            parser.error(f"--trace cannot be combined with "
                         f"{args.experiment!r}")
        if args.store is not None:
            parser.error(
                "--trace needs a fresh in-memory store (cached runs "
                "skip the engine and would leave holes in the trace); "
                "drop --store"
            )
    scale = SCALES[args.scale] if args.scale else current_scale()
    if args.experiment == "serve":
        from repro.service import (
            ServiceConfig,
            TenantQuota,
            run_service,
        )

        if args.jobs != 1:
            parser.error("'serve' sizes its pool with --workers, "
                         "not --jobs")
        join = None
        if args.join is not None:
            join_host, sep, join_port = args.join.rpartition(":")
            if not sep or not join_host or not join_port.isdigit():
                parser.error("--join expects HOST:PORT, e.g. "
                             "--join 127.0.0.1:8765")
            join = (join_host, int(join_port))
        tenant_quota = None
        if args.tenant_quota is not None:
            try:
                tenant_quota = TenantQuota.parse(args.tenant_quota)
            except ConfigurationError as exc:
                parser.error(str(exc))
        autoscale_min = autoscale_max = None
        if args.autoscale is not None:
            low, sep, high = args.autoscale.partition(":")
            if not sep or not low.isdigit() or not high.isdigit():
                parser.error("--autoscale expects MIN:MAX, e.g. "
                             "--autoscale 1:8")
            autoscale_min, autoscale_max = int(low), int(high)
        config = ServiceConfig(
            workers=args.workers,
            bulk_cap=args.bulk_cap,
            max_queue=args.max_queue,
            scale=scale,
            store_path=args.store,
            check_invariants=args.check_invariants,
            journal_path=args.journal,
            request_timeout=args.request_timeout,
            tenant_quota=tenant_quota,
            autoscale_min=autoscale_min,
            autoscale_max=autoscale_max,
        )
        return run_service(
            config, host=args.host, port=args.port, join=join
        )
    ctx = RunContext(
        scale=scale,
        store=RunStore(args.store),
        check_invariants=args.check_invariants,
    )
    if args.experiment == "report":
        path = write_report(args.output, ctx=ctx, jobs=max(1, args.jobs))
        print(f"wrote {path}")
        return 0
    if args.experiment == "profile":
        if args.target is None:
            parser.error("profile needs a target experiment, e.g. "
                         "'repro profile table2'")
        if args.target != "all" and args.target not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {args.target!r}; see 'repro list'"
            )
        print(profile_experiments(_experiment_names(args.target), ctx))
        return 0
    recorder = None
    if args.trace is not None:
        recorder = JsonlRecorder(args.trace)
        ctx.recorder = recorder
    try:
        for name in _experiment_names(args.experiment):
            result = EXPERIMENTS[name](ctx)
            print(result.render())
            print()
    finally:
        if recorder is not None:
            recorder.close()
    if recorder is not None:
        print(f"wrote {recorder.n_records} trace records to {args.trace}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
