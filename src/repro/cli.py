"""Command-line interface.

* ``repro <experiment> [--scale NAME]`` — run one experiment (or
  ``all``) and print its paper-style table;
* ``repro list`` — enumerate the available experiments;
* ``repro report [--scale NAME] [--output PATH] [--jobs N]`` —
  regenerate every table and figure into one markdown report, fanning
  out over N worker processes.

``--store DIR`` persists every simulation run content-addressed under
DIR, so repeated invocations (and parallel workers) reuse each other's
results.  ``--check-invariants`` runs every simulation with the
engine's accounting validator enabled (see
``SimConfig.check_invariants``) — slower, but any cluster-state
inconsistency aborts with a diagnostic snapshot instead of corrupting
results silently.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import SCALES, current_scale
from repro.experiments.context import RunContext
from repro.experiments.registry import EXPERIMENTS, REPORT_ORDER
from repro.experiments.report import write_report
from repro.store import RunStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Interstitial "
            "Computing: Utilizing Spare Cycles on Supercomputers' "
            "(CLUSTER 2003)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "report"],
        help=(
            "experiment to run ('all' runs everything, 'list' "
            "enumerates them, 'report' writes a markdown report)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scaling preset (default: REPRO_BENCH_SCALE or 'default')",
    )
    parser.add_argument(
        "--output",
        default="repro_report.md",
        help="output path for 'report' (default: repro_report.md)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for 'report' (default 1 = serial; the "
            "report is byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "directory for the content-addressed run store (default: "
            "in-memory only; parallel reports use a temporary one)"
        ),
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "validate engine cluster accounting after every event "
            "batch (slower; aborts with a diagnostic on violation)"
        ),
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    scale = SCALES[args.scale] if args.scale else current_scale()
    ctx = RunContext(
        scale=scale,
        store=RunStore(args.store),
        check_invariants=args.check_invariants,
    )
    if args.experiment == "report":
        path = write_report(args.output, ctx=ctx, jobs=max(1, args.jobs))
        print(f"wrote {path}")
        return 0
    names = (
        list(REPORT_ORDER) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        result = EXPERIMENTS[name](ctx)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
