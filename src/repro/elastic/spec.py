"""Elastic width policies and their configuration.

The paper's interstitial jobs are rigid: a fixed ``n``-CPU width that
rarely tiles the free space exactly, wasting the remainder — the
breakage factor ``(N(1-U)/n)/floor(N(1-U)/n)`` of Tables 5/6, dramatic
on Blue Pacific.  :class:`WidthPolicy` names the three width regimes
the elastic subsystem supports and :class:`ElasticitySpec` carries the
width range they operate over:

* **RIGID** — today's behavior, byte-for-byte unchanged: every job is
  ``cpus_per_job`` wide, forever.
* **MOLDABLE** — each job picks its width *once, at start*, from the
  CPUs currently free (greedy widest-first within
  ``[min_width, max_width]``).  Started jobs never change width.
* **MALLEABLE** — moldable at start, and resizable while running: the
  engine *shrinks* jobs (down to ``min_width``) to seat a blocked
  native instead of killing them, re-scaling the remaining runtime so
  no work is lost, and *grows* them back into idle capacity at
  scheduling passes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.jobs import InterstitialProject


class WidthPolicy(enum.Enum):
    """How an interstitial job's width is chosen (and re-chosen)."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"


@dataclass(frozen=True)
class ElasticitySpec:
    """Width policy plus the range it molds/resizes within.

    Parameters
    ----------
    policy:
        The :class:`WidthPolicy`.
    min_width, max_width:
        Inclusive width range for MOLDABLE/MALLEABLE jobs.  Either may
        be ``None``, in which case :meth:`resolve` falls back to the
        project's declared ``min_width``/``max_width`` and finally to
        its rigid ``cpus_per_job``.  RIGID specs must not carry a
        range (the width is always ``cpus_per_job``).
    """

    policy: WidthPolicy
    min_width: Optional[int] = None
    max_width: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.policy, WidthPolicy):
            raise ConfigurationError(
                f"policy must be a WidthPolicy, got {self.policy!r}"
            )
        for name in ("min_width", "max_width"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value <= 0
            ):
                raise ConfigurationError(
                    f"{name} must be a positive int or None, got {value!r}"
                )
        if (
            self.min_width is not None
            and self.max_width is not None
            and self.min_width > self.max_width
        ):
            raise ConfigurationError(
                f"min_width ({self.min_width}) must not exceed "
                f"max_width ({self.max_width})"
            )
        if self.policy is WidthPolicy.RIGID and (
            self.min_width is not None or self.max_width is not None
        ):
            raise ConfigurationError(
                "RIGID specs take no width range: the width is always "
                "the project's cpus_per_job"
            )

    # ------------------------------------------------------------------
    @classmethod
    def rigid(cls) -> "ElasticitySpec":
        """The no-op spec: paper-exact fixed-width jobs."""
        return cls(policy=WidthPolicy.RIGID)

    @classmethod
    def moldable(
        cls,
        min_width: Optional[int] = None,
        max_width: Optional[int] = None,
    ) -> "ElasticitySpec":
        """Pick-width-at-start jobs within ``[min_width, max_width]``."""
        return cls(
            policy=WidthPolicy.MOLDABLE,
            min_width=min_width,
            max_width=max_width,
        )

    @classmethod
    def malleable(
        cls,
        min_width: Optional[int] = None,
        max_width: Optional[int] = None,
    ) -> "ElasticitySpec":
        """Shrink/grow-at-runtime jobs within ``[min_width, max_width]``."""
        return cls(
            policy=WidthPolicy.MALLEABLE,
            min_width=min_width,
            max_width=max_width,
        )

    # ------------------------------------------------------------------
    @property
    def is_rigid(self) -> bool:
        return self.policy is WidthPolicy.RIGID

    def resolve(self, project: "InterstitialProject") -> Tuple[int, int]:
        """Effective ``(min, max)`` width for ``project``.

        Spec values win; unset ends fall back to the project's declared
        range (itself defaulting to the rigid ``cpus_per_job``).  The
        resolved range must be consistent (``0 < min <= max``).
        """
        proj_min, proj_max = project.width_range()
        lo = self.min_width if self.min_width is not None else proj_min
        hi = self.max_width if self.max_width is not None else proj_max
        if lo > hi:
            raise ConfigurationError(
                f"resolved width range [{lo}, {hi}] for project "
                f"{project.name!r} is empty; check the spec against the "
                f"project's cpus_per_job/min_width/max_width"
            )
        return (lo, hi)
