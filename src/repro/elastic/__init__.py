"""Elastic interstitials: moldable and malleable job widths.

The paper's rigid ``n``-CPU interstitial jobs waste the ``free mod n``
remainder of every hole (the breakage factor of Tables 5/6) and lose
whole jobs to preemption when the native queue needs CPUs back.  This
subsystem removes both penalties:

* :class:`ElasticitySpec` / :class:`WidthPolicy` configure the width
  regime — RIGID (paper-exact), MOLDABLE (width picked at start from
  the free CPUs) or MALLEABLE (resizable while running);
* :class:`ElasticInterstitialController` implements the two elastic
  policies on top of the Figure-1 controller;
* :func:`elastic_controller` builds the right controller for a spec.

The closed-form waste predictions live in
:func:`repro.theory.elastic_breakage_cpus` /
:func:`repro.theory.elastic_breakage_factor`, and
``experiments/elastic_tables.py`` measures the three policies head to
head.
"""

from repro.elastic.controller import (
    ElasticInterstitialController,
    elastic_controller,
)
from repro.elastic.spec import ElasticitySpec, WidthPolicy

__all__ = [
    "ElasticInterstitialController",
    "ElasticitySpec",
    "WidthPolicy",
    "elastic_controller",
]
