"""Elastic interstitial controller: moldable and malleable feeding.

:class:`ElasticInterstitialController` extends the paper's Figure-1
controller (:class:`~repro.core.controller.InterstitialController`)
with the two elastic width policies of DESIGN §16:

* **MOLDABLE** — each submitted job picks its width once, greedily
  widest-first from the free CPUs within the resolved
  ``[min_width, max_width]`` range, so one scheduling pass tiles the
  hole with at most one sub-``max_width`` job instead of wasting the
  ``free mod n`` remainder.
* **MALLEABLE** — moldable at start *and* resizable while running: the
  engine shrinks this controller's jobs (down to ``min_width``) to seat
  a blocked native instead of killing them, and this controller's
  :meth:`grow_requests` grows them back into idle capacity, oldest
  first, at every scheduling pass.

Work accounting is in fixed per-job quanta: every job carries
``cpus_per_job * runtime_on(machine)`` CPU-seconds of work regardless
of the width it runs at, so a width-``w`` job runs ``quantum / w``
seconds and resizes re-scale the remainder.  The remaining-job budget
therefore debits exactly 1.0 per submission, same as the rigid
controller, and fault kills re-credit whole quanta through the
inherited ``on_preempted`` path.

The malleable policy deliberately skips the Figure-1
``backfillWallTime`` gate: rigid (and moldable) jobs must not start
when the native head job is imminent because they would hold their
CPUs past its start, but malleable jobs release CPUs the instant the
native needs them, so holding back would only waste the interstice.
The utilization cap (§4.3.2.2) still applies to both submission and
growth.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.controller import InterstitialController
from repro.elastic.spec import ElasticitySpec, WidthPolicy
from repro.errors import ConfigurationError
from repro.jobs import InterstitialProject, Job, JobKind
from repro.machines import Machine
from repro.sim.state import ClusterState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.base import Scheduler


class ElasticInterstitialController(InterstitialController):
    """Figure-1 feeding with moldable or malleable job widths.

    Accepts the rigid controller's parameters (``n_jobs``,
    ``continual``, ``max_utilization``, ``start_time``,
    ``preemptible``, fault throttling, decision recording) plus the
    :class:`~repro.elastic.spec.ElasticitySpec` selecting the width
    policy and range.  ``checkpointing`` is not supported — malleable
    shrink makes it moot (nothing is killed, so there is nothing to
    checkpoint) and moldable fragments would change width across
    restarts, breaking the fixed-quantum accounting.

    Attributes
    ----------
    min_width, max_width:
        The resolved width range on this machine.
    n_shrunk, n_grown:
        Engine-reported resize counts (shrinks via ``on_shrunk``,
        grows counted when requested).
    """

    def __init__(
        self,
        machine: Machine,
        project: InterstitialProject,
        spec: ElasticitySpec,
        n_jobs: Optional[int] = None,
        continual: bool = False,
        max_utilization: Optional[float] = None,
        start_time: float = 0.0,
        preemptible: bool = False,
        record_decisions: bool = False,
        throttle_after_failures: Optional[int] = None,
        throttle_window: float = 3600.0,
        throttle_quiet_period: float = 3600.0,
    ) -> None:
        if spec.is_rigid:
            raise ConfigurationError(
                "ElasticInterstitialController requires a MOLDABLE or "
                "MALLEABLE spec; use InterstitialController (or the "
                "elastic_controller factory) for RIGID"
            )
        super().__init__(
            machine=machine,
            project=project,
            n_jobs=n_jobs,
            continual=continual,
            max_utilization=max_utilization,
            start_time=start_time,
            preemptible=preemptible,
            checkpointing=False,
            record_decisions=record_decisions,
            throttle_after_failures=throttle_after_failures,
            throttle_window=throttle_window,
            throttle_quiet_period=throttle_quiet_period,
        )
        self.spec = spec
        self.min_width, self.max_width = spec.resolve(project)
        if self.max_width > machine.cpus:
            raise ConfigurationError(
                f"elastic max_width {self.max_width} exceeds "
                f"{machine.name}'s {machine.cpus} CPUs"
            )
        #: CPU-seconds of work per job quantum, fixed at the project's
        #: nominal shape; a width-``w`` job runs ``quantum / w`` seconds.
        self.work_quantum = project.cpus_per_job * self.runtime
        self.n_shrunk = 0
        self.n_grown = 0

    # ------------------------------------------------------------------
    @property
    def elastic(self) -> bool:
        return self.spec.policy is WidthPolicy.MALLEABLE

    def on_shrunk(self, job: Job, old_cpus: int, t: float) -> None:
        self.n_shrunk += 1

    def runtime_at(self, width: int) -> float:
        """Per-job runtime at ``width`` CPUs on this machine."""
        return self.work_quantum / width

    # ------------------------------------------------------------------
    def offer(
        self, t: float, cluster: ClusterState, scheduler: "Scheduler"
    ) -> List[Job]:
        if t < self.start_time or self.exhausted:
            return []
        if t < self._throttled_until:
            self._log(t, cluster, scheduler, 0, "fault_throttled")
            return []
        budget = cluster.free_cpus
        capped = False
        if self.max_utilization is not None:
            headroom = (
                math.floor(self.max_utilization * cluster.total_cpus)
                - cluster.busy_cpus
            )
            if headroom < budget:
                budget = headroom
                capped = True
        if budget < self.min_width:
            self._log(
                t, cluster, scheduler, 0,
                "cap_blocked" if capped else "no_room",
            )
            return []
        queue_blocked = scheduler.queue_length > 0
        wall = (
            scheduler.head_start_estimate(t, cluster)
            if queue_blocked
            else math.inf
        )
        malleable = self.spec.policy is WidthPolicy.MALLEABLE
        # A malleable job can always shrink to min_width the moment the
        # head native is blocked, so the only CPUs it can strand are
        # that residue.  Let malleable submissions bypass the Figure-1
        # gate while the total residue across our running + new jobs
        # stays within one nominal job width — no worse for the head
        # than the single rigid job the paper's gate already tolerates.
        residue = 0
        if malleable and queue_blocked:
            residue = sum(
                rec.job.min_cpus or 0
                for rec in cluster.running.values()
                if rec.job.is_interstitial and rec.job.malleable
            )
        jobs: List[Job] = []
        remaining = self._remaining
        while budget >= self.min_width and remaining > 0:
            width = min(self.max_width, budget)
            runtime = self.runtime_at(width)
            # Figure-1 gate, per candidate: molded jobs hold their CPUs
            # to completion, so they must finish before the head native
            # can (by estimates) start.  Narrower candidates only run
            # longer, so the first blocked candidate blocks the rest.
            if queue_blocked and wall - t <= runtime:
                if not (
                    malleable
                    and residue + self.min_width <= self.max_width
                ):
                    break
                residue += self.min_width
            jobs.append(
                Job(
                    cpus=width,
                    runtime=runtime,
                    estimate=runtime,
                    submit_time=t,
                    user=self.project.user,
                    group=self.project.group,
                    kind=JobKind.INTERSTITIAL,
                    min_cpus=self.min_width if malleable else width,
                    max_cpus=self.max_width if malleable else width,
                )
            )
            budget -= width
            remaining -= 1.0
        if not jobs:
            self._log(
                t, cluster, scheduler, 0,
                "head_imminent" if queue_blocked else "no_room",
            )
            return []
        self._remaining = remaining
        self.submitted.extend(jobs)
        self._log(t, cluster, scheduler, len(jobs), "submitted")
        return jobs

    # ------------------------------------------------------------------
    def grow_requests(
        self, t: float, cluster: ClusterState, scheduler: "Scheduler"
    ) -> List[Tuple[Job, int]]:
        """Distribute idle capacity back to running malleable jobs,
        oldest first (they have the most remaining-work leverage)."""
        if self.spec.policy is not WidthPolicy.MALLEABLE:
            return []
        if t < self.start_time or t < self._throttled_until:
            return []
        budget = cluster.free_cpus
        if self.max_utilization is not None:
            budget = min(
                budget,
                math.floor(self.max_utilization * cluster.total_cpus)
                - cluster.busy_cpus,
            )
        if budget <= 0:
            return []
        requests: List[Tuple[Job, int]] = []
        for rec in sorted(
            cluster.running.values(),
            key=lambda r: (r.start_time, r.job.job_id),
        ):
            if budget <= 0:
                break
            job = rec.job
            if not (job.is_interstitial and job.malleable):
                continue
            room = job.max_cpus - job.cpus  # type: ignore[operator]
            if room <= 0:
                continue
            give = min(room, budget)
            requests.append((job, job.cpus + give))
            budget -= give
        self.n_grown += len(requests)
        return requests


def elastic_controller(
    machine: Machine,
    project: InterstitialProject,
    spec: Optional[ElasticitySpec] = None,
    **kwargs,
) -> InterstitialController:
    """Build the controller matching ``spec``.

    RIGID (or ``None``) returns the plain paper-exact
    :class:`~repro.core.controller.InterstitialController`; MOLDABLE
    and MALLEABLE return an :class:`ElasticInterstitialController`.
    Keyword arguments pass through to the chosen constructor.
    """
    if spec is None or spec.is_rigid:
        return InterstitialController(machine=machine, project=project,
                                      **kwargs)
    return ElasticInterstitialController(
        machine=machine, project=project, spec=spec, **kwargs
    )
