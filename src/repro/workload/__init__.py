"""Workload models and trace I/O.

The paper drives its simulations with proprietary ASCI job logs; this
package substitutes (a) calibrated synthetic generators that match every
aggregate statistic the paper reports about those logs — utilization,
job count, trace length, fat-tailed width mix, heavy-tailed runtimes,
bursty arrivals and default-heavy runtime estimates — and (b) a Standard
Workload Format (SWF) reader so public traces from the Parallel
Workloads Archive can be dropped in instead.
"""

from repro.workload.arrivals import (
    BurstyProcess,
    PoissonProcess,
    WeeklyCycle,
    generate_arrivals,
)
from repro.workload.distributions import (
    DefaultHeavyEstimates,
    LogNormalRuntimes,
    PowerOfTwoWidths,
)
from repro.workload.stats import TraceStats, compute_stats
from repro.workload.swf import read_swf, write_swf
from repro.workload.synthetic import (
    MachineMixProfile,
    generate_trace,
    mix_profile,
    synthetic_trace_for,
)
from repro.workload.archive import (
    CATALOG,
    ArchiveEntry,
    archive_entry,
    catalog_keys,
    load_archive_trace,
)
from repro.workload.trace import Trace
from repro.workload.validate import (
    TraceIssue,
    ValidationReport,
    validate_trace,
)

__all__ = [
    "Trace",
    "PoissonProcess",
    "WeeklyCycle",
    "BurstyProcess",
    "generate_arrivals",
    "PowerOfTwoWidths",
    "LogNormalRuntimes",
    "DefaultHeavyEstimates",
    "MachineMixProfile",
    "mix_profile",
    "generate_trace",
    "synthetic_trace_for",
    "read_swf",
    "write_swf",
    "TraceStats",
    "compute_stats",
    "validate_trace",
    "ValidationReport",
    "TraceIssue",
    "ArchiveEntry",
    "CATALOG",
    "archive_entry",
    "catalog_keys",
    "load_archive_trace",
]
