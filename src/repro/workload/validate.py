"""Trace validation for externally-supplied logs.

The synthetic generators construct valid traces by design; SWF files
from the wild do not.  :func:`validate_trace` checks every invariant
the simulator relies on and returns a structured report instead of
failing deep inside a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.jobs import Job
from repro.machines import Machine
from repro.workload.trace import Trace


@dataclass(frozen=True)
class TraceIssue:
    """One validation finding."""

    severity: str  # "error" (simulation would misbehave) or "warning"
    job_id: Optional[int]
    message: str


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_trace`."""

    issues: List[TraceIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not any(i.severity == "error" for i in self.issues)

    @property
    def errors(self) -> List[TraceIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[TraceIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    def describe(self) -> str:
        if not self.issues:
            return "trace OK: no issues found"
        lines = [
            f"trace validation: {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings"
        ]
        for issue in self.issues[:50]:
            prefix = issue.severity.upper()
            job = f" job {issue.job_id}" if issue.job_id is not None else ""
            lines.append(f"  [{prefix}]{job}: {issue.message}")
        if len(self.issues) > 50:
            lines.append(f"  ... and {len(self.issues) - 50} more")
        return "\n".join(lines)


def validate_trace(
    trace: Trace,
    machine: Optional[Machine] = None,
    long_job_fraction_of_log: float = 0.5,
) -> ValidationReport:
    """Check a trace against the simulator's invariants.

    Errors (simulation would reject or misbehave):

    * job wider than the machine;
    * non-finite or negative times;
    * estimate below runtime (impossible under kill-at-limit batch
      semantics — SWF ingestion floors these, but hand-built traces
      may not);
    * submission after the trace's nominal duration.

    Warnings (legal but suspicious):

    * jobs longer than ``long_job_fraction_of_log`` of the log;
    * zero-runtime jobs;
    * duplicate job ids.
    """
    report = ValidationReport()

    def error(job: Optional[Job], message: str) -> None:
        report.issues.append(
            TraceIssue("error", job.job_id if job else None, message)
        )

    def warn(job: Optional[Job], message: str) -> None:
        report.issues.append(
            TraceIssue("warning", job.job_id if job else None, message)
        )

    seen_ids = set()
    for job in trace.jobs:
        if machine is not None and job.cpus > machine.cpus:
            error(
                job,
                f"width {job.cpus} exceeds machine "
                f"{machine.name} ({machine.cpus} CPUs)",
            )
        for name, value in (
            ("submit_time", job.submit_time),
            ("runtime", job.runtime),
            ("estimate", job.estimate),
        ):
            if not math.isfinite(value) or value < 0:
                error(job, f"{name} is {value!r}")
        if job.estimate < job.runtime:
            error(
                job,
                f"estimate {job.estimate} below runtime {job.runtime}",
            )
        if trace.duration > 0 and job.submit_time > trace.duration:
            error(
                job,
                f"submitted at {job.submit_time} after trace end "
                f"{trace.duration}",
            )
        if (
            trace.duration > 0
            and job.runtime > long_job_fraction_of_log * trace.duration
        ):
            warn(
                job,
                f"runtime {job.runtime:.0f}s spans more than "
                f"{long_job_fraction_of_log:.0%} of the log",
            )
        if job.runtime == 0.0:
            warn(job, "zero runtime")
        if job.job_id in seen_ids:
            warn(job, "duplicate job id")
        seen_ids.add(job.job_id)

    if not trace.jobs:
        warn(None, "trace is empty")
    return report
