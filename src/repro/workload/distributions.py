"""Job attribute distributions.

Three model families, each matching a property the paper calls out:

* :class:`PowerOfTwoWidths` — job widths are powers of two with a
  log-uniform-ish weighting whose fat tail makes bin packing hard ("such
  fat tails in the marginal distributions are a critical component in
  the performance of a machine");
* :class:`LogNormalRuntimes` — heavy-tailed runtimes parameterized by
  median and a dispersion giving mean/median ratios near the paper's
  2.5 h / 0.8 h, with an optional weeks-long mixture component for Ross;
* :class:`DefaultHeavyEstimates` — user estimates that are "usually a
  default rather than a true estimate", drawn from a menu of round
  wall-times (median 6 h) and floored at the actual runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerOfTwoWidths:
    """Widths ``2**k`` for ``k`` in ``[0, max_exponent]``.

    ``tilt`` skews the exponent distribution: 0 is log-uniform, positive
    values favour narrow jobs, negative values favour wide jobs.  The
    weight of exponent ``k`` is ``exp(-tilt * k)``.
    """

    max_exponent: int
    tilt: float = 0.0

    def __post_init__(self) -> None:
        if self.max_exponent < 0:
            raise ConfigurationError(
                f"max_exponent must be >= 0: {self.max_exponent}"
            )

    def probabilities(self) -> np.ndarray:
        k = np.arange(self.max_exponent + 1)
        w = np.exp(-self.tilt * k)
        return w / w.sum()

    def mean(self) -> float:
        """Expected width."""
        k = np.arange(self.max_exponent + 1)
        return float(np.sum(self.probabilities() * 2.0 ** k))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` widths (int array)."""
        k = rng.choice(
            self.max_exponent + 1, size=n, p=self.probabilities()
        )
        return (2 ** k).astype(int)

    @classmethod
    def for_machine(
        cls, machine_cpus: int, max_fraction: float, tilt: float = 0.0
    ) -> "PowerOfTwoWidths":
        """Widths up to ``max_fraction`` of a machine, rounded down to a
        power of two."""
        if not (0 < max_fraction <= 1):
            raise ConfigurationError(
                f"max_fraction must be in (0, 1]: {max_fraction}"
            )
        cap = max(1, int(machine_cpus * max_fraction))
        return cls(max_exponent=int(math.log2(cap)), tilt=tilt)


@dataclass(frozen=True)
class LogNormalRuntimes:
    """Log-normal runtimes with an optional long-job mixture.

    Parameters
    ----------
    median_s:
        Median runtime in seconds.
    sigma:
        Log-space standard deviation; the mean/median ratio is
        ``exp(sigma**2 / 2)`` (sigma = 1.5 gives the paper's ~3x).
    long_fraction, long_scale:
        With probability ``long_fraction`` a job's runtime is multiplied
        by ``long_scale`` — the "jobs on the order of weeks" Ross allows.
    min_runtime_s:
        Floor to keep degenerate sub-second jobs out of the trace.
    """

    median_s: float
    sigma: float = 1.5
    long_fraction: float = 0.0
    long_scale: float = 1.0
    min_runtime_s: float = 60.0

    def __post_init__(self) -> None:
        if self.median_s <= 0:
            raise ConfigurationError(f"median_s must be positive: {self.median_s}")
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive: {self.sigma}")
        if not (0.0 <= self.long_fraction < 1.0):
            raise ConfigurationError(
                f"long_fraction must be in [0, 1): {self.long_fraction}"
            )
        if self.long_scale < 1.0:
            raise ConfigurationError(
                f"long_scale must be >= 1: {self.long_scale}"
            )

    def mean(self) -> float:
        """Expected runtime (including the long-job component)."""
        base = self.median_s * math.exp(self.sigma ** 2 / 2.0)
        return base * (
            1.0 - self.long_fraction + self.long_fraction * self.long_scale
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` runtimes in seconds."""
        runtimes = rng.lognormal(
            mean=math.log(self.median_s), sigma=self.sigma, size=n
        )
        if self.long_fraction > 0.0:
            long_mask = rng.uniform(size=n) < self.long_fraction
            runtimes[long_mask] *= self.long_scale
        return np.maximum(runtimes, self.min_runtime_s)


@dataclass(frozen=True)
class DefaultHeavyEstimates:
    """User estimates as defaults plus occasional honest attempts.

    With probability ``default_fraction`` the user picks a round default
    wall-time from ``defaults_s`` (weighted by ``default_weights``);
    otherwise the estimate is the runtime times a log-normal
    overestimation factor (>= 1).  Estimates are always floored at the
    actual runtime: batch systems kill jobs at the wall limit, so an
    admitted job's runtime never exceeds its estimate.
    """

    default_fraction: float = 0.6
    defaults_s: Tuple[float, ...] = (
        2 * 3600.0,
        6 * 3600.0,
        12 * 3600.0,
        24 * 3600.0,
        48 * 3600.0,
    )
    default_weights: Tuple[float, ...] = (0.10, 0.50, 0.20, 0.15, 0.05)
    honest_sigma: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.default_fraction <= 1.0):
            raise ConfigurationError(
                f"default_fraction must be in [0, 1]: {self.default_fraction}"
            )
        if len(self.defaults_s) != len(self.default_weights):
            raise ConfigurationError("defaults/weights length mismatch")
        if any(d <= 0 for d in self.defaults_s):
            raise ConfigurationError("defaults must be positive")
        if abs(sum(self.default_weights) - 1.0) > 1e-9:
            raise ConfigurationError("default_weights must sum to 1")

    def sample(
        self, runtimes: Sequence[float], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one estimate per runtime (element-wise >= runtime)."""
        runtimes = np.asarray(runtimes, dtype=float)
        n = runtimes.size
        use_default = rng.uniform(size=n) < self.default_fraction
        defaults = rng.choice(
            self.defaults_s, size=n, p=self.default_weights
        )
        honest = runtimes * np.exp(
            np.abs(rng.normal(0.0, self.honest_sigma, size=n))
        )
        estimates = np.where(use_default, defaults, honest)
        return np.maximum(estimates, runtimes)
