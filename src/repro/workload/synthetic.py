"""Calibrated synthetic native workloads for the ASCI machines.

The original logs are proprietary, so we generate per-machine synthetic
traces that match every aggregate the paper reports (see Table 1 and
§4.3): utilization, job count, log length, heavy-tailed runtimes with
the reported medians, fat-tailed power-of-two widths, bursty diurnal
arrivals and default-heavy user estimates.  Calibration is exact for
*offered* utilization: runtimes are rescaled so the trace's total work
equals ``U * N * duration`` (the realized, scheduled utilization then
lands close to the target; tests assert the gap).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.jobs import Job, JobKind
from repro.machines import Machine
from repro.machines.presets import WorkloadTargets, preset, targets
from repro.workload.arrivals import BurstyProcess, WeeklyCycle, generate_arrivals
from repro.workload.distributions import (
    DefaultHeavyEstimates,
    LogNormalRuntimes,
    PowerOfTwoWidths,
)
from repro.workload.trace import Trace

#: No generated job may exceed this fraction of the log length, keeping
#: the calibration loop stable (a job longer than the log would never
#: appear completed in a real log).
_MAX_RUNTIME_FRACTION = 0.6


@dataclass(frozen=True)
class MachineMixProfile:
    """Distributional shape of one machine's native job mix."""

    widths: PowerOfTwoWidths
    runtimes: LogNormalRuntimes
    estimates: DefaultHeavyEstimates
    cycle: WeeklyCycle
    bursts: BurstyProcess
    n_users: int = 25
    n_groups: int = 5
    #: Zipf exponent of user activity weights.
    user_zipf: float = 0.8


def mix_profile(name: str, machine: Machine) -> MachineMixProfile:
    """The tuned mix profile for a preset machine.

    * **ross** — widths up to half the machine, a 4 % weeks-long job
      component ("users can submit very long jobs, on the order of
      weeks");
    * **blue_mountain** — the paper's reported medians directly
      (actual 0.8 h / estimate 6 h), widths up to half the machine;
    * **blue_pacific** — "relatively smaller and shorter" jobs: widths
      capped at a quarter of the machine and tilted narrow, short
      runtimes, so the machine turns over quickly despite .907 load.
    """
    try:
        t = targets(name)
    except KeyError:
        raise ConfigurationError(
            f"no mix profile for machine preset {name!r}"
        ) from None
    if name == "ross":
        return MachineMixProfile(
            widths=PowerOfTwoWidths.for_machine(
                machine.cpus, t.max_width_fraction, tilt=0.10
            ),
            runtimes=LogNormalRuntimes(
                median_s=t.median_runtime_s,
                sigma=1.4,
                long_fraction=0.04,
                long_scale=25.0,
            ),
            estimates=DefaultHeavyEstimates(default_fraction=0.6),
            cycle=WeeklyCycle(),
            bursts=BurstyProcess(),
        )
    if name == "blue_mountain":
        return MachineMixProfile(
            widths=PowerOfTwoWidths.for_machine(
                machine.cpus, t.max_width_fraction, tilt=0.0
            ),
            runtimes=LogNormalRuntimes(median_s=t.median_runtime_s, sigma=1.5),
            estimates=DefaultHeavyEstimates(default_fraction=0.6),
            cycle=WeeklyCycle(),
            bursts=BurstyProcess(),
        )
    if name == "blue_pacific":
        return MachineMixProfile(
            widths=PowerOfTwoWidths.for_machine(
                # Slightly wide-tilted: with per-job areas fixed by the
                # utilization calibration, this is what makes the jobs
                # *short* (the paper's fast turnover) while still
                # relatively smaller than Blue Mountain's.
                machine.cpus, t.max_width_fraction, tilt=-0.3
            ),
            runtimes=LogNormalRuntimes(median_s=t.median_runtime_s, sigma=1.3),
            estimates=DefaultHeavyEstimates(default_fraction=0.55),
            cycle=WeeklyCycle(),
            bursts=BurstyProcess(mean_burst_s=1.5 * 3600.0),
            n_users=40,
            n_groups=8,
        )
    raise ConfigurationError(f"no mix profile for machine preset {name!r}")


def generate_trace(
    machine: Machine,
    target: WorkloadTargets,
    profile: MachineMixProfile,
    rng: np.random.Generator,
    scale: float = 1.0,
    name: str = "",
) -> Trace:
    """Generate a calibrated native trace.

    ``scale`` shrinks log length and job count together (utilization and
    mix shape preserved) so tests and benchmarks can run at laptop
    scale.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive: {scale}")
    duration = target.duration_s * scale
    n_target = max(1, round(target.n_jobs * scale))
    arrivals = generate_arrivals(
        n_target, duration, rng, cycle=profile.cycle, bursts=profile.bursts
    )
    if arrivals.size == 0:
        raise ConfigurationError(
            "arrival process produced no jobs; increase scale"
        )
    n = arrivals.size
    widths = profile.widths.sample(n, rng)
    runtimes = profile.runtimes.sample(n, rng)

    # Calibrate offered area to U * N * duration, iterating the rescale
    # against the max-runtime cap until stable.
    target_area = target.utilization * machine.cpus * duration
    cap = _MAX_RUNTIME_FRACTION * duration
    for _ in range(4):
        runtimes = np.minimum(runtimes, cap)
        area = float(np.sum(widths * runtimes))
        if area <= 0:
            raise ConfigurationError("degenerate trace: zero offered work")
        runtimes = runtimes * (target_area / area)
    runtimes = np.minimum(np.maximum(runtimes, 1.0), cap)

    estimates = profile.estimates.sample(runtimes, rng)

    # User population with Zipf-weighted activity; users map to groups
    # round-robin so groups have balanced populations.
    ranks = np.arange(1, profile.n_users + 1, dtype=float)
    user_p = ranks ** -profile.user_zipf
    user_p /= user_p.sum()
    user_ids = rng.choice(profile.n_users, size=n, p=user_p)

    # Explicit ids make the trace a pure function of its inputs (the
    # process-global Job counter would leak allocation history into the
    # content-addressed run store); the engine numbers interstitial
    # jobs above the trace's range.
    jobs = []
    for i in range(n):
        uid = int(user_ids[i])
        jobs.append(
            Job(
                job_id=i + 1,
                cpus=int(widths[i]),
                runtime=float(runtimes[i]),
                estimate=float(estimates[i]),
                submit_time=float(arrivals[i]),
                user=f"user{uid}",
                group=f"group{uid % profile.n_groups}",
                kind=JobKind.NATIVE,
            )
        )
    return Trace(jobs=jobs, duration=duration, name=name or machine.name)


def synthetic_trace_for(
    name: str,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
    machine: Optional[Machine] = None,
    utilization: Optional[float] = None,
) -> Trace:
    """One-call trace builder for a preset machine name.

    Parameters
    ----------
    name:
        ``ross``, ``blue_mountain`` or ``blue_pacific``.
    rng:
        Randomness source (seeded default for reproducibility).
    scale:
        Log-length/job-count scale factor.
    machine:
        Optional substitute machine (e.g. a :meth:`Machine.scaled`
        shrunk copy); widths are re-derived for its size.
    utilization:
        Optional override of the target utilization (used by ablations
        sweeping load).
    """
    rng = rng or np.random.default_rng(12345)
    machine = machine or preset(name)
    target = targets(name)
    if utilization is not None:
        target = replace(target, utilization=utilization)
    profile = mix_profile(name, machine)
    return generate_trace(
        machine, target, profile, rng, scale=scale, name=f"{name} synthetic"
    )
