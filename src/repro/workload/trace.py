"""Trace container: a native job log plus its nominal duration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ValidationError
from repro.jobs import Job
from repro.machines import Machine


@dataclass
class Trace:
    """A native job log.

    Parameters
    ----------
    jobs:
        Native jobs sorted (or sortable) by submit time.
    duration:
        Nominal log length in seconds; submissions all fall in
        ``[0, duration]``.  Experiments use this as the metrics horizon.
    name:
        Label for reports.
    """

    jobs: List[Job] = field(default_factory=list)
    duration: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValidationError(
                f"duration must be >= 0, got {self.duration}"
            )
        for job in self.jobs:
            if job.submit_time > self.duration:
                raise ValidationError(
                    f"job {job.job_id} submitted at {job.submit_time} after "
                    f"trace end {self.duration}"
                )

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    def sorted_jobs(self) -> List[Job]:
        """Jobs in submission order (stable on job id)."""
        return sorted(self.jobs, key=lambda j: (j.submit_time, j.job_id))

    def offered_area(self) -> float:
        """Total actual work in CPU-seconds."""
        return sum(job.area for job in self.jobs)

    def offered_utilization(self, machine: Machine) -> float:
        """Offered load: total work / machine capacity over the log."""
        if self.duration <= 0:
            raise ValidationError("trace has no duration")
        return self.offered_area() / (machine.cpus * self.duration)

    def copy(self) -> "Trace":
        """Deep-ish copy with pristine job scheduling state."""
        return Trace(
            jobs=[job.copy_unscheduled() for job in self.jobs],
            duration=self.duration,
            name=self.name,
        )

    def truncated(self, duration: float, name: str = "") -> "Trace":
        """A shorter trace containing only submissions before
        ``duration`` (used to scale experiments down)."""
        if duration <= 0:
            raise ValidationError(f"duration must be positive: {duration}")
        jobs = [
            job.copy_unscheduled()
            for job in self.jobs
            if job.submit_time <= duration
        ]
        return Trace(
            jobs=jobs, duration=duration, name=name or f"{self.name}[:{duration:.0f}s]"
        )
