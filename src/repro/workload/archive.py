"""Catalog of public Parallel Workloads Archive traces.

The paper's ASCI logs are proprietary, but the Parallel Workloads
Archive (Feitelson et al.) publishes comparable production logs in the
SWF format this package reads.  This catalog records the standard
traces closest in spirit to the paper's machines — same era, same
labs in two cases — so users can rerun every experiment on real logs:

1. download the ``.swf`` (URLs below; the archive is at
   https://www.cs.huji.ac.il/labs/parallel/workload/),
2. ``trace = load_archive_trace("lanl_cm5", path)``,
3. pass ``entry.machine()`` and ``trace.jobs`` to any runner.

No network access is performed by this module; it only documents the
traces and builds the matching :class:`~repro.machines.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.machines import Machine
from repro.workload.swf import read_swf
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ArchiveEntry:
    """Metadata for one public trace."""

    key: str
    name: str
    site: str
    cpus: int
    clock_ghz: float
    n_jobs: int
    months: float
    url: str
    notes: str = ""

    def machine(self, queue_algorithm: str = "LSF") -> Machine:
        """A machine model sized for this trace."""
        return Machine(
            name=self.name,
            cpus=self.cpus,
            clock_ghz=self.clock_ghz,
            site=self.site,
            queue_algorithm=queue_algorithm,
        )


_BASE = "https://www.cs.huji.ac.il/labs/parallel/workload/"

CATALOG: Dict[str, ArchiveEntry] = {
    entry.key: entry
    for entry in (
        ArchiveEntry(
            key="lanl_cm5",
            name="LANL CM-5",
            site="Los Alamos",
            cpus=1024,
            clock_ghz=0.033,
            n_jobs=122_060,
            months=24.0,
            url=_BASE + "l_lanl_cm5/index.html",
            notes=(
                "Los Alamos production log — the same lab as the "
                "paper's Blue Mountain."
            ),
        ),
        ArchiveEntry(
            key="llnl_t3d",
            name="LLNL Cray T3D",
            site="Livermore",
            cpus=256,
            clock_ghz=0.150,
            n_jobs=21_323,
            months=4.0,
            url=_BASE + "l_llnl_t3d/index.html",
            notes=(
                "Livermore production log — the same lab as the "
                "paper's Blue Pacific."
            ),
        ),
        ArchiveEntry(
            key="sdsc_sp2",
            name="SDSC SP2",
            site="San Diego",
            cpus=128,
            clock_ghz=0.066,
            n_jobs=73_496,
            months=24.0,
            url=_BASE + "l_sdsc_sp2/index.html",
            notes="Heavily-loaded SP2; a classic backfilling testbed.",
        ),
        ArchiveEntry(
            key="ctc_sp2",
            name="CTC SP2",
            site="Cornell",
            cpus=430,
            clock_ghz=0.066,
            n_jobs=79_302,
            months=11.0,
            url=_BASE + "l_ctc_sp2/index.html",
            notes="The standard trace of the EASY-backfill literature.",
        ),
        ArchiveEntry(
            key="kth_sp2",
            name="KTH SP2",
            site="Stockholm",
            cpus=100,
            clock_ghz=0.066,
            n_jobs=28_490,
            months=11.0,
            url=_BASE + "l_kth_sp2/index.html",
            notes="Small machine; good for quick real-trace runs.",
        ),
    )
}


def catalog_keys() -> Tuple[str, ...]:
    """Known archive trace keys."""
    return tuple(CATALOG)


def archive_entry(key: str) -> ArchiveEntry:
    """Look up a catalog entry."""
    try:
        return CATALOG[key]
    except KeyError:
        raise KeyError(
            f"unknown archive trace {key!r}; choose from {catalog_keys()}"
        ) from None


def load_archive_trace(key: str, path: Union[str, Path]) -> Trace:
    """Read a downloaded archive SWF file as the named catalog trace.

    The file must have been downloaded by the user (this library makes
    no network requests); ``path`` points at the unpacked ``.swf``.
    """
    entry = archive_entry(key)
    trace = read_swf(path, name=entry.name)
    return trace
