"""Job arrival processes.

The paper emphasizes that "bursty job arrivals also contribute to the
uneven job load because of long-term correlations in the submission of
jobs" (citing Squillante et al. [18]).  We compose three layers:

* a homogeneous :class:`PoissonProcess` base;
* a :class:`WeeklyCycle` rate modulation (day vs night, weekday vs
  weekend) — supercomputer users submit during business hours;
* a :class:`BurstyProcess` two-state Markov modulation (quiet/burst)
  producing the long-range correlated clumps of submissions.

:func:`generate_arrivals` draws arrival times from the product of the
three intensities via Lewis–Shedler thinning, normalized so the expected
arrival count matches the requested target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import DAY, HOUR


@dataclass(frozen=True)
class PoissonProcess:
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    rate: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.rate) or self.rate <= 0:
            raise ConfigurationError(f"rate must be positive: {self.rate}")

    def sample(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival times over ``[0, duration)``, ascending."""
        n = rng.poisson(self.rate * duration)
        return np.sort(rng.uniform(0.0, duration, size=n))


@dataclass(frozen=True)
class WeeklyCycle:
    """Deterministic day/week rate multiplier.

    Time 0 is Monday 00:00.  The multiplier is ``day_factor`` during
    business hours on weekdays, ``night_factor`` on weekday nights and
    ``weekend_factor`` all weekend.  Factors are relative; thinning
    normalizes the mean, so only ratios matter.
    """

    day_factor: float = 1.6
    night_factor: float = 0.6
    weekend_factor: float = 0.4
    day_start_hour: float = 8.0
    day_end_hour: float = 18.0

    def __post_init__(self) -> None:
        for name in ("day_factor", "night_factor", "weekend_factor"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not (0 <= self.day_start_hour < self.day_end_hour <= 24):
            raise ConfigurationError("invalid day window")

    def multiplier(self, t: float) -> float:
        """Rate multiplier at time ``t``."""
        if int(t // DAY) % 7 >= 5:
            return self.weekend_factor
        hour = (t % DAY) / HOUR
        if self.day_start_hour <= hour < self.day_end_hour:
            return self.day_factor
        return self.night_factor

    def multipliers(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`multiplier`."""
        times = np.asarray(times, dtype=float)
        weekend = (times // DAY).astype(int) % 7 >= 5
        hour = (times % DAY) / HOUR
        day = (hour >= self.day_start_hour) & (hour < self.day_end_hour)
        out = np.where(day, self.day_factor, self.night_factor)
        return np.where(weekend, self.weekend_factor, out)

    @property
    def max_factor(self) -> float:
        return max(self.day_factor, self.night_factor, self.weekend_factor)

    def mean_factor(self) -> float:
        """Exact long-run mean multiplier over one week."""
        day_hours = self.day_end_hour - self.day_start_hour
        weekday = day_hours * self.day_factor + (24 - day_hours) * self.night_factor
        weekend = 24 * self.weekend_factor
        return (5 * weekday + 2 * weekend) / (7 * 24)


@dataclass(frozen=True)
class BurstyProcess:
    """Two-state Markov rate modulation (quiet / burst).

    State dwell times are exponential with the given means; during a
    burst the rate is multiplied by ``burst_factor``, otherwise by
    ``quiet_factor``.
    """

    mean_quiet_s: float = 8 * HOUR
    mean_burst_s: float = 2 * HOUR
    burst_factor: float = 4.0
    quiet_factor: float = 0.7

    def __post_init__(self) -> None:
        if self.mean_quiet_s <= 0 or self.mean_burst_s <= 0:
            raise ConfigurationError("dwell means must be positive")
        if self.burst_factor < self.quiet_factor:
            raise ConfigurationError("burst_factor must be >= quiet_factor")
        if self.quiet_factor < 0:
            raise ConfigurationError("quiet_factor must be >= 0")

    def sample_states(
        self, duration: float, rng: np.random.Generator
    ) -> List[Tuple[float, float, float]]:
        """Alternating (start, end, factor) segments covering
        ``[0, duration)``, starting in the quiet state."""
        segments: List[Tuple[float, float, float]] = []
        t = 0.0
        in_burst = False
        while t < duration:
            mean = self.mean_burst_s if in_burst else self.mean_quiet_s
            factor = self.burst_factor if in_burst else self.quiet_factor
            dwell = float(rng.exponential(mean))
            end = min(duration, t + dwell)
            segments.append((t, end, factor))
            t = end
            in_burst = not in_burst
        return segments

    def mean_factor(self) -> float:
        """Long-run mean multiplier (stationary dwell-time weighting)."""
        total = self.mean_quiet_s + self.mean_burst_s
        return (
            self.mean_quiet_s * self.quiet_factor
            + self.mean_burst_s * self.burst_factor
        ) / total

    @property
    def max_factor(self) -> float:
        return self.burst_factor


def generate_arrivals(
    n_target: int,
    duration: float,
    rng: np.random.Generator,
    cycle: WeeklyCycle = WeeklyCycle(),
    bursts: BurstyProcess = BurstyProcess(),
) -> np.ndarray:
    """Draw bursty, diurnal arrival times over ``[0, duration)``.

    The base rate is normalized by the two modulations' mean factors so
    the *expected* arrival count equals ``n_target`` (realized counts
    are Poisson-distributed around it).
    """
    if n_target <= 0:
        raise ConfigurationError(f"n_target must be positive: {n_target}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive: {duration}")
    base_rate = n_target / duration / (cycle.mean_factor() * bursts.mean_factor())
    lam_max = base_rate * cycle.max_factor * bursts.max_factor
    candidates = PoissonProcess(lam_max).sample(duration, rng)
    if candidates.size == 0:
        return candidates
    # Piecewise burst factors at candidate times.
    segments = bursts.sample_states(duration, rng)
    seg_starts = np.array([s for s, _, _ in segments])
    seg_factors = np.array([f for _, _, f in segments])
    seg_idx = np.clip(
        np.searchsorted(seg_starts, candidates, side="right") - 1,
        0,
        len(segments) - 1,
    )
    intensity = base_rate * cycle.multipliers(candidates) * seg_factors[seg_idx]
    keep = rng.uniform(0.0, lam_max, size=candidates.size) < intensity
    return candidates[keep]
