"""Standard Workload Format (SWF) I/O.

SWF is the Parallel Workloads Archive's 18-column plain-text format for
supercomputer job logs.  Supporting it means every public production
trace (including later logs of the very machines the paper studied) can
be replayed through this reproduction in place of our synthetic traces.

Columns used (1-indexed, as in the SWF specification):

=====  ==========================  =================================
 col    field                       mapping
=====  ==========================  =================================
 1      job number                  ignored (ids reassigned)
 2      submit time (s)             ``Job.submit_time``
 4      run time (s)                ``Job.runtime``
 5      allocated processors        ``Job.cpus`` (fallback: col 8)
 8      requested processors        ``Job.cpus`` when col 5 missing
 9      requested time (s)          ``Job.estimate`` (fallback: runtime)
 12     user id                     ``Job.user``
 13     group id                    ``Job.group``
=====  ==========================  =================================

Missing values are encoded as ``-1`` per the spec.  Jobs with
non-positive runtime or processor counts are skipped (cancelled entries).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

from repro.errors import TraceFormatError
from repro.jobs import Job, JobKind
from repro.workload.trace import Trace

_N_FIELDS = 18


def _parse_line(line: str, lineno: int) -> List[float]:
    parts = line.split()
    if len(parts) < _N_FIELDS:
        raise TraceFormatError(
            f"SWF line {lineno}: expected {_N_FIELDS} fields, "
            f"got {len(parts)}"
        )
    try:
        return [float(p) for p in parts[:_N_FIELDS]]
    except ValueError as exc:
        raise TraceFormatError(f"SWF line {lineno}: {exc}") from None


def read_swf(source: Union[str, Path, TextIO], name: str = "") -> Trace:
    """Parse an SWF file (path, or open text handle) into a
    :class:`~repro.workload.trace.Trace`.

    Submit times are shifted so the first submission is at t = 0, and
    the trace duration is the last submission time.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_swf(handle, name=name or str(source))
    jobs: List[Job] = []
    records = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = _parse_line(line, lineno)
        submit = fields[1]
        runtime = fields[3]
        procs = fields[4] if fields[4] > 0 else fields[7]
        requested_time = fields[8]
        user = int(fields[11])
        group = int(fields[12])
        if runtime <= 0 or procs <= 0 or submit < 0:
            continue  # cancelled or malformed record
        estimate = requested_time if requested_time > 0 else runtime
        estimate = max(estimate, runtime)
        records.append((submit, runtime, int(procs), estimate, user, group))
    if not records:
        raise TraceFormatError("SWF file contains no usable job records")
    t0 = min(r[0] for r in records)
    for submit, runtime, procs, estimate, user, group in records:
        jobs.append(
            Job(
                cpus=procs,
                runtime=runtime,
                estimate=estimate,
                submit_time=submit - t0,
                user=f"user{user}" if user >= 0 else "user_unknown",
                group=f"group{group}" if group >= 0 else "group_unknown",
                kind=JobKind.NATIVE,
            )
        )
    duration = max(job.submit_time for job in jobs)
    return Trace(jobs=jobs, duration=duration, name=name or "swf")


def write_swf(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Write a trace as SWF (enough fields for :func:`read_swf` to
    round-trip; unused columns are ``-1``)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            write_swf(trace, handle)
            return
    out: TextIO = destination
    out.write(f"; SWF export of trace {trace.name!r}\n")
    out.write(f"; jobs: {trace.n_jobs}  duration: {trace.duration:.0f}s\n")
    for idx, job in enumerate(trace.sorted_jobs(), start=1):
        user = _numeric_suffix(job.user)
        group = _numeric_suffix(job.group)
        fields = [
            idx,               # 1 job number
            int(job.submit_time),  # 2 submit
            -1,                # 3 wait (scheduler-dependent)
            int(round(job.runtime)),  # 4 run time
            job.cpus,          # 5 allocated procs
            -1,                # 6 average CPU time
            -1,                # 7 used memory
            job.cpus,          # 8 requested procs
            int(round(job.estimate)),  # 9 requested time
            -1,                # 10 requested memory
            1,                 # 11 status (completed)
            user,              # 12 user id
            group,             # 13 group id
            -1,                # 14 executable id
            -1,                # 15 queue id
            -1,                # 16 partition id
            -1,                # 17 preceding job
            -1,                # 18 think time
        ]
        out.write(" ".join(str(f) for f in fields) + "\n")


def _numeric_suffix(label: str) -> int:
    """Extract a trailing integer from ``user7``-style labels (-1 when
    absent), so synthetic traces round-trip through SWF ids."""
    digits = ""
    for ch in reversed(label):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    return int(digits) if digits else -1


def swf_roundtrip(trace: Trace) -> Trace:
    """Write then re-read a trace in memory (test helper)."""
    buffer = io.StringIO()
    write_swf(trace, buffer)
    buffer.seek(0)
    return read_swf(buffer, name=trace.name)
