"""Aggregate trace statistics (Table 1 style summaries)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ValidationError
from repro.machines import Machine
from repro.units import DAY, HOUR
from repro.workload.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a native trace on a machine."""

    name: str
    n_jobs: int
    duration_days: float
    offered_utilization: float
    median_runtime_h: float
    mean_runtime_h: float
    median_estimate_h: float
    mean_estimate_h: float
    mean_width: float
    max_width: int
    width_histogram: Dict[int, int]

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"trace {self.name}: {self.n_jobs} jobs over "
            f"{self.duration_days:.1f} days",
            f"  offered utilization: {self.offered_utilization:.3f}",
            f"  runtime  median {self.median_runtime_h:.2f} h / "
            f"mean {self.mean_runtime_h:.2f} h",
            f"  estimate median {self.median_estimate_h:.2f} h / "
            f"mean {self.mean_estimate_h:.2f} h",
            f"  width mean {self.mean_width:.1f} CPUs, "
            f"max {self.max_width}",
        ]
        return "\n".join(lines)


def compute_stats(trace: Trace, machine: Machine) -> TraceStats:
    """Compute :class:`TraceStats` for a trace on ``machine``."""
    if trace.n_jobs == 0:
        raise ValidationError("cannot summarize an empty trace")
    runtimes = np.array([j.runtime for j in trace.jobs])
    estimates = np.array([j.estimate for j in trace.jobs])
    widths = np.array([j.cpus for j in trace.jobs])
    histogram: Dict[int, int] = {}
    for w in widths:
        histogram[int(w)] = histogram.get(int(w), 0) + 1
    return TraceStats(
        name=trace.name,
        n_jobs=trace.n_jobs,
        duration_days=trace.duration / DAY,
        offered_utilization=trace.offered_utilization(machine),
        median_runtime_h=float(np.median(runtimes)) / HOUR,
        mean_runtime_h=float(np.mean(runtimes)) / HOUR,
        median_estimate_h=float(np.median(estimates)) / HOUR,
        mean_estimate_h=float(np.mean(estimates)) / HOUR,
        mean_width=float(np.mean(widths)),
        max_width=int(widths.max()),
        width_histogram=histogram,
    )


def burstiness_index(trace: Trace, bin_s: float = HOUR) -> float:
    """Index of dispersion of arrival counts (variance / mean over
    fixed bins): 1 for Poisson, larger for bursty processes.

    The paper attributes uneven load partly to bursty submissions; this
    lets tests assert the synthetic generator actually is bursty.
    """
    if trace.n_jobs == 0 or trace.duration <= 0:
        raise ValidationError("cannot compute burstiness of an empty trace")
    n_bins = max(1, int(trace.duration // bin_s))
    counts, _ = np.histogram(
        [j.submit_time for j in trace.jobs],
        bins=n_bins,
        range=(0.0, n_bins * bin_s),
    )
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.var() / mean)
