"""Package version resolution.

The single source of truth is the installed distribution metadata
(``pyproject.toml``'s ``version`` field, read back through
:mod:`importlib.metadata`).  Running from a source checkout with
``PYTHONPATH=src`` — the documented no-install workflow — has no
distribution record, so the fallback returns the same base version
tagged ``+src`` to make "not installed" visible in ``repro --version``
and the service ``/healthz`` payload.
"""

from __future__ import annotations

from importlib import metadata

#: Kept in sync with ``pyproject.toml`` for source-tree runs.
_FALLBACK = "1.0.0"


def repro_version() -> str:
    """The package version string, e.g. ``"1.0.0"``.

    Sourced from the installed distribution metadata; a source-tree
    run (no installed distribution) yields ``"<base>+src"``.
    """
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        return f"{_FALLBACK}+src"
