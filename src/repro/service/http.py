"""Minimal stdlib HTTP/1.1 front end for the simulation service.

One deliberately small surface — JSON in/out, implemented directly on
``asyncio.start_server`` so the daemon stays single-threaded and adds
no runtime dependency:

* ``POST /run`` — body is a :class:`~repro.service.requests.SimRequest`
  payload; response status mirrors the service pipeline (200 ok, 400
  invalid, 429 backpressure + ``Retry-After``, 500 worker failure,
  503 draining).  An ``X-Repro-Tenant`` header names the tenant when
  the body carries no ``"tenant"`` field (the body field wins);
* ``GET /healthz`` — liveness, version and admission posture;
* ``GET /metrics`` — counters, per-class latency and store behavior.

When the daemon is a fleet replica (see :mod:`repro.service.fleet`)
the front end also speaks the peer protocol — ``POST /fleet/run``
(owner-routed execution), ``GET``/``POST /fleet/cache/<key>`` (peer
cache lookup/replication), ``POST /fleet/steal`` and ``/fleet/stolen``
(work-stealing), ``POST /fleet/join`` and ``/fleet/membership``
(self-assembly), and ``GET /fleet/metrics`` (fleet-wide aggregation).
These routes answer 404 on a solo daemon.

Connections are **persistent** (HTTP/1.1 keep-alive): the handler
loops requests on one socket until the client sends ``Connection:
close``, goes quiet past :attr:`HttpFrontend.keep_alive_timeout`, or
disconnects.  HTTP/1.0 clients get one response per connection unless
they opt in with ``Connection: keep-alive``.  Error responses close
the connection — after a parse failure the framing can't be trusted.

The parser accepts exactly what the bundled client emits (request
line, headers, optional ``Content-Length`` body) and answers anything
malformed with a 400 rather than crashing the connection handler.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Set

from repro.errors import ServiceError
from repro.service.daemon import SimulationService
from repro.service.requests import ServiceResponse, SimRequest

#: Refuse unreasonable request bodies outright.
MAX_BODY_BYTES = 1 << 20

#: Request header naming the tenant a ``/run`` body should be
#: attributed to when the body itself carries no ``"tenant"`` field
#: (lower-cased: the parser folds header names to lower case).
TENANT_HEADER = "x-repro-tenant"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpFrontend:
    """Serve a :class:`SimulationService` (and optionally its fleet
    membership) over HTTP.

    Parameters
    ----------
    service:
        The admission pipeline behind ``/run``.
    host, port:
        Bind address; ``port=0`` picks a free port, reflected back
        into :attr:`port` after :meth:`start`.
    member:
        The daemon's :class:`~repro.service.fleet.FleetMember`.  When
        set, ``/run`` routes by content address across the fleet and
        the ``/fleet/*`` peer routes come alive.
    keep_alive_timeout:
        Seconds an idle persistent connection may sit between
        requests before the server closes it.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        member: Optional[Any] = None,
        keep_alive_timeout: float = 75.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.member = member
        self.keep_alive_timeout = keep_alive_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        """Bind and start accepting (``port=0`` picks a free port,
        reflected back into :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Unblock handlers parked on an idle keep-alive read; their
        # readline returns EOF and the handler exits cleanly.
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-dead socket
                pass
        self._connections.clear()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                parsed = await self._next_request(reader)
                if parsed is None:
                    break  # clean EOF or idle timeout between requests
                keep_alive = False
                if isinstance(parsed, ServiceResponse):
                    response = parsed
                else:
                    method, path, body, headers, keep_alive = parsed
                    try:
                        response = await self._route(
                            method, path, body, headers
                        )
                    except Exception as exc:  # noqa: BLE001 - boundary
                        keep_alive = False
                        response = ServiceResponse(
                            500,
                            {"status": "error",
                             "error": f"{type(exc).__name__}: {exc}"},
                        )
                try:
                    writer.write(_serialize(response, keep_alive))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _next_request(self, reader: asyncio.StreamReader):
        """One request off a persistent connection: ``None`` on clean
        EOF/idle-timeout, an error :class:`ServiceResponse`, or
        ``(method, path, body, headers, keep_alive)``."""
        try:
            parsed = await asyncio.wait_for(
                _read_request(reader), self.keep_alive_timeout
            )
        except asyncio.TimeoutError:
            return None
        return parsed

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        headers = headers or {}
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return ServiceResponse(200, self.service.healthz())
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            if self.member is not None:
                return ServiceResponse(
                    200, self.member.metrics_snapshot()
                )
            return ServiceResponse(200, self.service.metrics_snapshot())
        if path == "/run":
            if method != "POST":
                return _method_not_allowed("POST")
            parsed = _parse_request_body(
                body, header_tenant=headers.get(TENANT_HEADER)
            )
            if isinstance(parsed, ServiceResponse):
                return parsed
            if self.member is not None:
                return await self.member.submit(parsed)
            return await self.service.submit(parsed)
        if path.startswith("/fleet/"):
            return await self._route_fleet(method, path, body, headers)
        return ServiceResponse(
            404, {"status": "error", "error": f"no such path {path!r}"}
        )

    # ------------------------------------------------------------------
    async def _route_fleet(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        headers = headers or {}
        member = self.member
        if member is None:
            return ServiceResponse(
                404,
                {"status": "error",
                 "error": "this daemon is not a fleet replica"},
            )
        if path == "/fleet/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            return ServiceResponse(200, await member.fleet_metrics())
        if path == "/fleet/run":
            if method != "POST":
                return _method_not_allowed("POST")
            parsed = _parse_request_body(
                body, header_tenant=headers.get(TENANT_HEADER)
            )
            if isinstance(parsed, ServiceResponse):
                return parsed
            return await member.handle_routed(parsed)
        if path.startswith("/fleet/cache/"):
            key = path[len("/fleet/cache/"):]
            if not key:
                return ServiceResponse(
                    404, {"status": "error", "error": "missing key"}
                )
            if method == "GET":
                hit, value = member.handle_cache_get(key)
                if not hit:
                    return ServiceResponse(
                        404, {"status": "miss", "key": key}
                    )
                return ServiceResponse(
                    200, {"status": "ok", "key": key, "value": value}
                )
            if method == "POST":
                payload = _parse_json(body)
                if isinstance(payload, ServiceResponse):
                    return payload
                value = payload.get("value")
                if not isinstance(value, str):
                    return ServiceResponse(
                        400,
                        {"status": "error",
                         "error": "'value' must be a string"},
                    )
                member.handle_cache_put(key, value)
                return ServiceResponse(200, {"status": "ok"})
            return _method_not_allowed("GET, POST")
        if path == "/fleet/steal":
            if method != "POST":
                return _method_not_allowed("POST")
            payload = _parse_json(body)
            if isinstance(payload, ServiceResponse):
                return payload
            entries = member.handle_steal(
                str(payload.get("thief", "?")),
                int(payload.get("max_n", 1)),
            )
            return ServiceResponse(
                200, {"status": "ok", "entries": entries}
            )
        if path == "/fleet/stolen":
            if method != "POST":
                return _method_not_allowed("POST")
            payload = _parse_json(body)
            if isinstance(payload, ServiceResponse):
                return payload
            member.handle_stolen(
                int(payload.get("entry_id", -1)),
                int(payload.get("status", 500)),
                payload.get("payload") or {},
            )
            return ServiceResponse(200, {"status": "ok"})
        if path == "/fleet/join":
            if method != "POST":
                return _method_not_allowed("POST")
            payload = _parse_json(body)
            if isinstance(payload, ServiceResponse):
                return payload
            host = payload.get("host")
            port = payload.get("port")
            if not isinstance(host, str) or not isinstance(port, int):
                return ServiceResponse(
                    400,
                    {"status": "error",
                     "error": "join needs 'host' (str) and 'port' (int)"},
                )
            try:
                reply = member.handle_join(host, port)
            except ServiceError as exc:
                return ServiceResponse(
                    409, {"status": "error", "error": str(exc)}
                )
            return ServiceResponse(200, reply)
        if path == "/fleet/membership":
            if method != "POST":
                return _method_not_allowed("POST")
            payload = _parse_json(body)
            if isinstance(payload, ServiceResponse):
                return payload
            members = payload.get("members")
            if not isinstance(members, list):
                return ServiceResponse(
                    400,
                    {"status": "error",
                     "error": "'members' must be a list"},
                )
            member.handle_membership(members)
            return ServiceResponse(200, {"status": "ok"})
        return ServiceResponse(
            404, {"status": "error", "error": f"no such path {path!r}"}
        )


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------
def _parse_json(body: bytes):
    """Decode a JSON object body, or a ready 400 response."""
    try:
        payload = json.loads(body.decode("utf-8") or "null")
    except ValueError as exc:
        return ServiceResponse(
            400, {"status": "error", "error": f"bad JSON body: {exc}"}
        )
    if not isinstance(payload, dict):
        return ServiceResponse(
            400,
            {"status": "error", "error": "body must be a JSON object"},
        )
    return payload


def _parse_request_body(
    body: bytes, header_tenant: Optional[str] = None
):
    """Decode a body into a :class:`SimRequest`, or a 400 response.

    ``header_tenant`` is the ``X-Repro-Tenant`` header value, used as
    the request tenant when the JSON body doesn't carry one (an
    explicit body field always wins — it is what fleet peers forward).
    """
    try:
        payload = json.loads(body.decode("utf-8") or "null")
        if (
            header_tenant
            and isinstance(payload, dict)
            and "tenant" not in payload
        ):
            payload = dict(payload, tenant=header_tenant)
        return SimRequest.from_payload(payload)
    except (ValueError, ServiceError) as exc:
        return ServiceResponse(
            400, {"status": "error", "error": str(exc)}
        )


async def _read_request(
    reader: asyncio.StreamReader,
):
    """Parse one HTTP request; returns ``None`` on clean EOF (client
    finished with the keep-alive connection), an error
    :class:`ServiceResponse`, or ``(method, path, body, keep_alive)``."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, OSError):
        request_line = b""
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return ServiceResponse(
            400, {"status": "error", "error": "malformed request line"}
        )
    method, path = parts[0].upper(), parts[1].split("?", 1)[0]
    version = parts[2].upper() if len(parts) > 2 else "HTTP/1.0"
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        return ServiceResponse(
            400, {"status": "error", "error": "bad Content-Length"}
        )
    if length > MAX_BODY_BYTES:
        return ServiceResponse(
            413, {"status": "error", "error": "request body too large"}
        )
    try:
        body = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return ServiceResponse(
            400, {"status": "error", "error": "truncated request body"}
        )
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    return method, path, body, headers, keep_alive


def _method_not_allowed(allowed: str) -> ServiceResponse:
    return ServiceResponse(
        405,
        {"status": "error", "error": f"method not allowed; use {allowed}"},
    )


def _serialize(
    response: ServiceResponse, keep_alive: bool = False
) -> bytes:
    """Render a :class:`ServiceResponse` as an HTTP/1.1 message."""
    body = json.dumps(response.payload).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    headers = [
        f"HTTP/1.1 {response.status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if response.retry_after is not None:
        headers.append(f"Retry-After: {max(1, round(response.retry_after))}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body
