"""Minimal stdlib HTTP/1.1 front end for the simulation service.

One deliberately small surface — three routes, JSON in/out,
``Connection: close`` per request — implemented directly on
``asyncio.start_server`` so the daemon stays single-threaded and adds
no runtime dependency:

* ``POST /run`` — body is a :class:`~repro.service.requests.SimRequest`
  payload; response status mirrors the service pipeline (200 ok, 400
  invalid, 429 backpressure + ``Retry-After``, 500 worker failure,
  503 draining);
* ``GET /healthz`` — liveness, version and admission posture;
* ``GET /metrics`` — counters, per-class latency and store behavior.

The parser accepts exactly what the bundled client emits (request
line, headers, optional ``Content-Length`` body) and answers anything
malformed with a 400 rather than crashing the connection handler.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.errors import ServiceError
from repro.service.daemon import SimulationService
from repro.service.requests import ServiceResponse, SimRequest

#: Refuse unreasonable request bodies outright.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpFrontend:
    """Serve a :class:`SimulationService` over HTTP."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting (``port=0`` picks a free port,
        reflected back into :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - connection boundary
            response = ServiceResponse(
                500,
                {"status": "error",
                 "error": f"{type(exc).__name__}: {exc}"},
            )
        try:
            writer.write(_serialize(response))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> ServiceResponse:
        parsed = await _read_request(reader)
        if isinstance(parsed, ServiceResponse):
            return parsed
        method, path, body = parsed
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return ServiceResponse(200, self.service.healthz())
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            return ServiceResponse(200, self.service.metrics_snapshot())
        if path == "/run":
            if method != "POST":
                return _method_not_allowed("POST")
            try:
                payload = json.loads(body.decode("utf-8") or "null")
                request = SimRequest.from_payload(payload)
            except (ValueError, ServiceError) as exc:
                return ServiceResponse(
                    400, {"status": "error", "error": str(exc)}
                )
            return await self.service.submit(request)
        return ServiceResponse(
            404, {"status": "error", "error": f"no such path {path!r}"}
        )


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
):
    """Parse one HTTP request; returns ``(method, path, body)`` or a
    ready error :class:`ServiceResponse`."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, OSError):
        request_line = b""
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return ServiceResponse(
            400, {"status": "error", "error": "malformed request line"}
        )
    method, path = parts[0].upper(), parts[1].split("?", 1)[0]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        return ServiceResponse(
            400, {"status": "error", "error": "bad Content-Length"}
        )
    if length > MAX_BODY_BYTES:
        return ServiceResponse(
            413, {"status": "error", "error": "request body too large"}
        )
    try:
        body = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return ServiceResponse(
            400, {"status": "error", "error": "truncated request body"}
        )
    return method, path, body


def _method_not_allowed(allowed: str) -> ServiceResponse:
    return ServiceResponse(
        405,
        {"status": "error", "error": f"method not allowed; use {allowed}"},
    )


def _serialize(response: ServiceResponse) -> bytes:
    """Render a :class:`ServiceResponse` as an HTTP/1.1 message."""
    body = json.dumps(response.payload).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    headers = [
        f"HTTP/1.1 {response.status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if response.retry_after is not None:
        headers.append(f"Retry-After: {max(1, round(response.retry_after))}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body
