"""Thin clients for the simulation service.

:class:`ServiceClient` talks HTTP with :mod:`http.client` (stdlib, one
connection per call, so one client instance is safe to share across
threads).  :class:`InProcessClient` drives a
:class:`~repro.service.daemon.SimulationService` coroutine pipeline
from synchronous code via a background event loop — the same request
semantics without sockets, used by tests and the service bench.

Both return :class:`ServiceReply`, a small status + payload pair with
accessors for the common fields.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceError
from repro.service.daemon import ServiceConfig, SimulationService
from repro.service.requests import SimRequest


@dataclass
class ServiceReply:
    """One reply: HTTP-shaped status code plus decoded JSON payload."""

    status: int
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def result(self) -> Optional[str]:
        """The rendered table text (``None`` unless ok)."""
        return self.payload.get("result") if self.ok else None

    @property
    def cached(self) -> bool:
        return bool(self.payload.get("cached"))

    @property
    def coalesced(self) -> bool:
        return bool(self.payload.get("coalesced"))

    @property
    def retry_after(self) -> Optional[float]:
        return self.payload.get("retry_after_s")

    @property
    def error(self) -> Optional[str]:
        return self.payload.get("error")


class ServiceClient:
    """HTTP client for a running ``repro serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def run(
        self,
        experiment: str,
        *,
        scale: Optional[str] = None,
        seed: Optional[int] = None,
        priority: str = "interactive",
    ) -> ServiceReply:
        """Submit one simulation request and wait for its reply."""
        body = {
            "experiment": experiment,
            "scale": scale,
            "seed": seed,
            "priority": priority,
        }
        return self._call("POST", "/run", body)

    def run_many(
        self, requests: Sequence[Dict[str, Any]], max_workers: int = 8
    ) -> List[ServiceReply]:
        """Submit many request payloads concurrently (thread-per-call,
        order-preserving)."""
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(
                pool.map(lambda kw: self.run(**kw), requests)
            )

    def healthz(self) -> ServiceReply:
        return self._call("GET", "/healthz")

    def metrics(self) -> ServiceReply:
        return self._call("GET", "/metrics")

    def wait_until_healthy(
        self, timeout: float = 30.0, interval: float = 0.1
    ) -> ServiceReply:
        """Poll ``/healthz`` until the daemon answers; raises
        :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                reply = self.healthz()
                if reply.ok:
                    return reply
            except (ConnectionError, OSError):
                pass
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"service at {self.host}:{self.port} not healthy "
                    f"after {timeout:.0f}s"
                )
            time.sleep(interval)

    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> ServiceReply:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                None if body is None else json.dumps(body).encode("utf-8")
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            return ServiceReply(response.status, decoded)
        finally:
            conn.close()


class InProcessClient:
    """Drive a :class:`SimulationService` without sockets.

    Spins a private event loop in a daemon thread, starts the service
    on it, and exposes the same blocking ``run``/``healthz``/
    ``metrics`` surface as :class:`ServiceClient`.  Use as a context
    manager (``__exit__`` drains and stops the service).
    """

    def __init__(self, config: ServiceConfig, **service_kwargs: Any) -> None:
        self._service = SimulationService(config, **service_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )

    # ------------------------------------------------------------------
    @property
    def service(self) -> SimulationService:
        return self._service

    def __enter__(self) -> "InProcessClient":
        self._thread.start()
        self._await(self._service.start())
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._await(self._service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    # ------------------------------------------------------------------
    def run(
        self,
        experiment: str,
        *,
        scale: Optional[str] = None,
        seed: Optional[int] = None,
        priority: str = "interactive",
    ) -> ServiceReply:
        request = SimRequest(
            experiment=experiment, scale=scale, seed=seed, priority=priority
        )
        response = self._await(self._service.submit(request))
        return ServiceReply(response.status, response.payload)

    def run_many(
        self, requests: Sequence[Dict[str, Any]], max_workers: int = 8
    ) -> List[ServiceReply]:
        """Submit many request payloads concurrently on the service
        loop (the concurrency that exercises coalescing/admission)."""
        futures = [
            asyncio.run_coroutine_threadsafe(
                self._service.submit(SimRequest(**kw)), self._loop
            )
            for kw in requests
        ]
        return [
            ServiceReply(r.status, r.payload)
            for r in (f.result() for f in futures)
        ]

    def healthz(self) -> ServiceReply:
        return ServiceReply(200, self._service.healthz())

    def metrics(self) -> ServiceReply:
        return ServiceReply(200, self._service.metrics_snapshot())

    # ------------------------------------------------------------------
    def _await(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()
