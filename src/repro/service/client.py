"""Thin clients for the simulation service.

:class:`ServiceClient` talks HTTP with :mod:`http.client` (stdlib).
By default it keeps one **persistent keep-alive connection per
thread** (thread-local, so one client instance is still safe to share
across threads) and re-uses it across calls — the daemon's front end
holds the socket open, which removes a TCP handshake from every
request; ``bench_service.py`` measures the difference.  Pass
``keep_alive=False`` to fall back to one connection per call.

Because a long-lived socket can die between calls (daemon restart,
idle timeout), idempotent calls **retry once** on reset-class errors
(``RemoteDisconnected``, ``BadStatusLine``, ``ConnectionError``...)
with a fresh connection.  Every request the service accepts is safe
to retry: computations are deterministic and content-addressed, so a
duplicate submission is absorbed by the cache or coalesced onto the
in-flight run.  Timeouts deliberately do **not** retry — a stuck
server is not a reset, and retrying would double the wait.

:class:`InProcessClient` drives a
:class:`~repro.service.daemon.SimulationService` coroutine pipeline
from synchronous code via a background event loop — the same request
semantics without sockets, used by tests and the service bench.

Both return :class:`ServiceReply`, a small status + payload pair with
accessors for the common fields.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceError
from repro.service.daemon import ServiceConfig, SimulationService
from repro.service.requests import SimRequest


@dataclass
class ServiceReply:
    """One reply: HTTP-shaped status code plus decoded JSON payload."""

    status: int
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def result(self) -> Optional[str]:
        """The rendered table text (``None`` unless ok)."""
        return self.payload.get("result") if self.ok else None

    @property
    def cached(self) -> bool:
        return bool(self.payload.get("cached"))

    @property
    def coalesced(self) -> bool:
        return bool(self.payload.get("coalesced"))

    @property
    def retry_after(self) -> Optional[float]:
        return self.payload.get("retry_after_s")

    @property
    def error(self) -> Optional[str]:
        return self.payload.get("error")


#: Errors meaning "the connection died" — safe to retry once with a
#: fresh socket.  socket.timeout (a subclass of OSError in 3.10+,
#: excluded explicitly) is NOT here on purpose: a slow server must
#: surface as a timeout, not a silent doubled wait.
_RESET_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionError,
    BrokenPipeError,
)


class ServiceClient:
    """HTTP client for a running ``repro serve`` daemon.

    Parameters
    ----------
    host, port, timeout:
        Daemon address and per-call socket timeout.
    keep_alive:
        Keep one persistent connection per thread (default).  When
        False every call opens and closes its own connection — the
        pre-keep-alive behavior, kept for measurement and for
        pathological middleboxes.
    tenant:
        Tenant id this client submits as, sent as the
        ``X-Repro-Tenant`` header on every request.  ``None`` (the
        default) submits without one — the daemon attributes those to
        its default tenant.  A per-call ``tenant=`` on :meth:`run`
        overrides it for that request.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 300.0,
        *,
        keep_alive: bool = True,
        tenant: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.tenant = tenant
        self._local = threading.local()

    def close(self) -> None:
        """Drop this thread's persistent connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # ------------------------------------------------------------------
    def run(
        self,
        experiment: str,
        *,
        scale: Optional[str] = None,
        seed: Optional[int] = None,
        priority: str = "interactive",
        tenant: Optional[str] = None,
    ) -> ServiceReply:
        """Submit one simulation request and wait for its reply."""
        body = {
            "experiment": experiment,
            "scale": scale,
            "seed": seed,
            "priority": priority,
        }
        if tenant is not None:
            body["tenant"] = tenant
        return self._call("POST", "/run", body)

    def run_many(
        self, requests: Sequence[Dict[str, Any]], max_workers: int = 8
    ) -> List[ServiceReply]:
        """Submit many request payloads concurrently (thread-per-call,
        order-preserving)."""
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(
                pool.map(lambda kw: self.run(**kw), requests)
            )

    def healthz(self) -> ServiceReply:
        return self._call("GET", "/healthz")

    def metrics(self) -> ServiceReply:
        return self._call("GET", "/metrics")

    def fleet_metrics(self) -> ServiceReply:
        """Fleet-aggregated metrics (404 on a solo daemon)."""
        return self._call("GET", "/fleet/metrics")

    def wait_until_healthy(
        self, timeout: float = 30.0, interval: float = 0.1
    ) -> ServiceReply:
        """Poll ``/healthz`` until the daemon answers; raises
        :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                reply = self.healthz()
                if reply.ok:
                    return reply
            except (ConnectionError, OSError):
                pass
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"service at {self.host}:{self.port} not healthy "
                    f"after {timeout:.0f}s"
                )
            time.sleep(interval)

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        """This thread's persistent connection, created on demand."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> ServiceReply:
        payload = (
            None if body is None else json.dumps(body).encode("utf-8")
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        if not self.keep_alive:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                return self._exchange(
                    conn, method, path, payload, headers
                )
            finally:
                conn.close()
        # Persistent path: retry exactly once on a reset-class error
        # (the socket died between calls, or the daemon restarted
        # mid-request).  Submissions are idempotent — deterministic,
        # content-addressed, cache-absorbed — so the retry is safe.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                return self._exchange(
                    conn, method, path, payload, headers
                )
            except socket.timeout:
                self.close()
                raise
            except _RESET_ERRORS:
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange(
        self,
        conn: http.client.HTTPConnection,
        method: str,
        path: str,
        payload: Optional[bytes],
        headers: Dict[str, str],
    ) -> ServiceReply:
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if response.will_close:
            self.close()
        return ServiceReply(response.status, decoded)


class InProcessClient:
    """Drive a :class:`SimulationService` without sockets.

    Spins a private event loop in a daemon thread, starts the service
    on it, and exposes the same blocking ``run``/``healthz``/
    ``metrics`` surface as :class:`ServiceClient`.  Use as a context
    manager (``__exit__`` drains and stops the service).
    """

    def __init__(self, config: ServiceConfig, **service_kwargs: Any) -> None:
        self._service = SimulationService(config, **service_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )

    # ------------------------------------------------------------------
    @property
    def service(self) -> SimulationService:
        return self._service

    def __enter__(self) -> "InProcessClient":
        self._thread.start()
        self._await(self._service.start())
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._await(self._service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    # ------------------------------------------------------------------
    def run(
        self,
        experiment: str,
        *,
        scale: Optional[str] = None,
        seed: Optional[int] = None,
        priority: str = "interactive",
        tenant: Optional[str] = None,
    ) -> ServiceReply:
        request = SimRequest(
            experiment=experiment,
            scale=scale,
            seed=seed,
            priority=priority,
            tenant=tenant,
        )
        response = self._await(self._service.submit(request))
        return ServiceReply(response.status, response.payload)

    def run_many(
        self, requests: Sequence[Dict[str, Any]], max_workers: int = 8
    ) -> List[ServiceReply]:
        """Submit many request payloads concurrently on the service
        loop (the concurrency that exercises coalescing/admission)."""
        futures = [
            asyncio.run_coroutine_threadsafe(
                self._service.submit(SimRequest(**kw)), self._loop
            )
            for kw in requests
        ]
        return [
            ServiceReply(r.status, r.payload)
            for r in (f.result() for f in futures)
        ]

    def healthz(self) -> ServiceReply:
        return ServiceReply(200, self._service.healthz())

    def metrics(self) -> ServiceReply:
        return ServiceReply(200, self._service.metrics_snapshot())

    # ------------------------------------------------------------------
    def _await(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()
