"""Request/response types for the simulation service.

A :class:`SimRequest` names an experiment from the registry, an
optional scale preset and seed override, and a priority class.  The
two classes map directly onto the paper's two workload classes:
``interactive`` requests are the natives (dispatched to the worker
pool immediately), ``bulk`` requests are the interstitials (held back
and admitted only into pool-utilization gaps below the cap).

The *content address* of a request deliberately excludes the priority
class: an interactive and a bulk request for the same configuration
describe the same deterministic computation, so they share one cache
entry and coalesce onto one in-flight run.

Requests also carry a *tenant id* (multi-tenant admission, see
:mod:`repro.service.tenancy`).  Like priority, the tenant is a pure
admission attribute: it is excluded from the content address, so two
tenants asking for the same configuration share one cache entry and
one in-flight computation — only *scheduling* differs per tenant.
Requests that name no tenant belong to :data:`DEFAULT_TENANT`, which
keeps every pre-tenancy client working unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServiceError
from repro.experiments.config import SCALES, ExperimentScale
from repro.store import content_key

#: Priority classes, in "natives first" order.
INTERACTIVE = "interactive"
BULK = "bulk"
PRIORITIES = (INTERACTIVE, BULK)

#: Tenant id assigned to requests that name none (pre-tenancy clients).
DEFAULT_TENANT = "default"

#: Upper bound on tenant-id length; ids are opaque client strings and
#: end up in journal records, counters, and metrics keys.
MAX_TENANT_LEN = 64


@dataclass
class ServiceResponse:
    """One service-layer response: an HTTP-shaped status code plus a
    JSON-ready payload.  The HTTP front end serializes it verbatim;
    the in-process path returns it directly."""

    status: int
    payload: Dict[str, Any]
    #: Backpressure hint (seconds), set on 429 rejections.
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass(frozen=True)
class SimRequest:
    """One simulation request.

    Parameters
    ----------
    experiment:
        Registry experiment name (see ``repro list``).
    scale:
        Scale preset name; ``None`` uses the service's default.
    seed:
        Root-seed override applied on top of the preset (forces a
        distinct content address, hence a distinct run).
    priority:
        ``"interactive"`` or ``"bulk"``.
    tenant:
        Tenant id for fair-share admission; ``None`` means
        :data:`DEFAULT_TENANT`.  Never part of the content address.
    """

    experiment: str
    scale: Optional[str] = None
    seed: Optional[int] = None
    priority: str = INTERACTIVE
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.experiment, str) or not self.experiment:
            raise ServiceError("'experiment' must be a non-empty string")
        if self.scale is not None and not isinstance(self.scale, str):
            raise ServiceError("'scale' must be a preset name or null")
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
        ):
            raise ServiceError("'seed' must be an integer or null")
        if self.priority not in PRIORITIES:
            raise ServiceError(
                f"'priority' must be one of {PRIORITIES}, "
                f"got {self.priority!r}"
            )
        if self.tenant is not None:
            if not isinstance(self.tenant, str) or not self.tenant:
                raise ServiceError("'tenant' must be a non-empty string or null")
            if len(self.tenant) > MAX_TENANT_LEN:
                raise ServiceError(
                    f"'tenant' must be at most {MAX_TENANT_LEN} characters"
                )

    @property
    def effective_tenant(self) -> str:
        """The tenant this request is charged to."""
        return self.tenant if self.tenant is not None else DEFAULT_TENANT

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SimRequest":
        """Build a request from a decoded JSON body, rejecting unknown
        fields (catching client typos like ``"prioritty"``)."""
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        known = {"experiment", "scale", "seed", "priority", "tenant"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"unknown request fields: {unknown}")
        if "experiment" not in payload:
            raise ServiceError("request needs an 'experiment' field")
        kwargs: Dict[str, Any] = {"experiment": payload["experiment"]}
        for field in ("scale", "seed", "tenant"):
            if payload.get(field) is not None:
                kwargs[field] = payload[field]
        if payload.get("priority") is not None:
            kwargs["priority"] = payload["priority"]
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def resolve_scale(self, default: ExperimentScale) -> ExperimentScale:
        """The effective scale: named preset (or ``default``) with the
        seed override applied."""
        if self.scale is None:
            scale = default
        elif self.scale in SCALES:
            scale = SCALES[self.scale]
        else:
            raise ServiceError(
                f"unknown scale {self.scale!r}; one of {sorted(SCALES)}"
            )
        if self.seed is not None:
            scale = replace(scale, seed=self.seed)
        return scale

    def run_payload(self, scale: ExperimentScale) -> Dict[str, Any]:
        """Content-address payload for this request at its effective
        scale (priority excluded — see the module docstring)."""
        return {
            "kind": "service-run",
            "experiment": self.experiment,
            "scale": dict(asdict(scale)),
        }

    def run_key(self, default: ExperimentScale) -> str:
        """Content address of the request's computation."""
        return content_key(self.run_payload(self.resolve_scale(default)))
