"""Deterministic consistent-hash ring for the serving fleet.

The fleet shards its content-addressed cache by routing every request
key (already a SHA-256 hex digest — see :func:`repro.store.content_key`)
to one *owner* replica.  :class:`HashRing` implements the classic
consistent-hashing construction: each replica id is expanded into
``vnodes`` virtual points (``sha256("<replica>#<i>")`` truncated to 64
bits), all points are kept sorted, and a key is owned by the first
point clockwise from the key's own hash.

Two properties matter to the fleet and are pinned by tests:

* **Determinism** — positions derive only from replica-id strings and
  SHA-256, never from process identity, insertion order, or
  ``PYTHONHASHSEED``; every process that knows the member list computes
  byte-identical ownership, so replicas route without consulting each
  other.
* **Stability** — adding a replica moves only the keys the new replica
  now owns (≈ K/N of them); removing a replica moves only the keys it
  owned, each to the replica that would have owned it had the removed
  one never existed.  Peer caches therefore stay mostly warm across
  membership changes.

The ring is a pure data structure: membership changes are the fleet
layer's job (see :mod:`repro.service.fleet`).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Virtual points per replica.  64 keeps the max/mean ownership skew
#: under ~2x for small fleets while membership changes stay cheap
#: (N * 64 insertions).
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """Ring position of ``label``: the first 8 bytes of its SHA-256,
    big-endian.  64 bits keeps collisions vanishingly unlikely while
    staying exactly representable everywhere."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping content keys to replica ids.

    Parameters
    ----------
    replicas:
        Initial replica ids (any iterable of unique strings).
    vnodes:
        Virtual points per replica (>= 1).
    """

    def __init__(
        self,
        replicas: Iterable[str] = (),
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        #: Sorted (point, replica_id) pairs.  The replica id is part of
        #: the sort key only to break (astronomically unlikely) point
        #: ties deterministically; lookups bisect on the point alone.
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._replicas: set = set()
        for replica in replicas:
            self.add(replica)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, replica: str) -> bool:
        return replica in self._replicas

    @property
    def replicas(self) -> List[str]:
        """Member ids, sorted (stable regardless of join order)."""
        return sorted(self._replicas)

    # ------------------------------------------------------------------
    def add(self, replica: str) -> None:
        """Insert ``replica``'s virtual points (idempotent)."""
        if not replica or not isinstance(replica, str):
            raise ConfigurationError(
                f"replica id must be a non-empty string: {replica!r}"
            )
        if replica in self._replicas:
            return
        self._replicas.add(replica)
        for i in range(self.vnodes):
            insort(self._points, (_point(f"{replica}#{i}"), replica))
        self._hashes = [p for p, _ in self._points]

    def remove(self, replica: str) -> None:
        """Remove ``replica``'s virtual points (idempotent)."""
        if replica not in self._replicas:
            return
        self._replicas.discard(replica)
        self._points = [p for p in self._points if p[1] != replica]
        self._hashes = [p for p, _ in self._points]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> Optional[str]:
        """The replica owning ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        idx = bisect_right(self._hashes, _point(key))
        if idx == len(self._points):
            idx = 0  # wrap around the top of the ring
        return self._points[idx][1]

    def owners(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* replicas clockwise from ``key``
        (fewer when the ring has fewer members) — the owner first,
        then its successors, the natural replication set."""
        if not self._points or n < 1:
            return []
        found: List[str] = []
        idx = bisect_right(self._hashes, _point(key))
        for step in range(len(self._points)):
            _, replica = self._points[(idx + step) % len(self._points)]
            if replica not in found:
                found.append(replica)
                if len(found) == n:
                    break
        return found

    # ------------------------------------------------------------------
    def assignment_digest(self, keys: Iterable[str]) -> str:
        """SHA-256 over ``key->owner`` lines for ``keys`` (sorted) — a
        compact fingerprint of the routing table that tests compare
        across processes and releases."""
        lines = "".join(
            f"{key} {self.owner(key)}\n" for key in sorted(keys)
        )
        return hashlib.sha256(lines.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing({len(self._replicas)} replicas x "
            f"{self.vnodes} vnodes)"
        )
