"""Multi-tenant predictive admission for the serving daemon.

The daemon's bulk backlog was one FIFO: a tenant flooding a
million-request sweep would starve every later arrival until its
backlog drained.  This module dogfoods the remaining pieces of the
paper's scheduling machinery on the request path itself:

* :class:`TenantFairQueue` — the bulk backlog as per-tenant lanes,
  dequeued by the paper's priority formula (`sched/priority.py`):
  ``score = fair_share_factor + waited / wait_norm``.  The fair-share
  factor comes from a :class:`~repro.sched.fairshare.FairShareTracker`
  charged with *actual request service time*, so a tenant that has
  recently consumed the pool is deprioritized and a newcomer's requests
  interleave ahead of a flood instead of behind it.  The wait term is
  the same starvation guard as the simulator's ``wait_weight *
  waited_days``, rescaled from days to request timescales.
* :class:`TenantAdmission` — the bookkeeping hub: the tracker, a
  :class:`~repro.sched.predictor.PerUserRuntimePredictor` with tenants
  as "users" (429 ``Retry-After`` quotes each tenant's *predicted*
  backlog drain time, not a global observed-latency heuristic), and
  per-tenant in-flight counts for quota enforcement.
* :class:`TenantQuota` — ``--tenant-quota`` limits: max in-flight
  dispatches per tenant plus a max share of the bulk queue, each
  rejected with a tenant-scoped 429 reason.
* :class:`WorkerAutoscaler` — the continual-mode Table 8 loop applied
  to *capacity*: when queued bulk work is blocked by the utilization
  cap, grow the supervised pool (up to a ceiling); when the pool sits
  under-utilized with an empty backlog, shrink it back (down to a
  floor).  Both transitions require ``patience`` consecutive
  observations, the same hysteresis the paper's continual mode uses to
  avoid thrashing on transient load.

Everything here is sans-IO and deterministic under an injected clock;
the asyncio daemon owns the events and tasks.  Tenant ids never enter
content addresses (see :mod:`repro.service.requests`), so tenancy
changes *scheduling only* — results stay byte-identical to the
single-tenant path.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sched.fairshare import FairShareTracker
from repro.sched.predictor import PerUserRuntimePredictor
from repro.service.requests import DEFAULT_TENANT

#: Fair-share half-life for request-path usage.  The simulator defaults
#: to a week; request service times are seconds, so minutes of memory
#: is the equivalent horizon (a tenant stops paying for a sweep a few
#: minutes after it ends).
DEFAULT_TENANT_HALF_LIFE_S = 300.0

#: Seconds of queue wait worth one full unit of fair-share factor —
#: the request-path analogue of the paper's ``wait_weight = 1.0`` per
#: day.  A tenant over-served by the whole factor range catches back up
#: after this long at the head of its lane, bounding worst-case delay.
DEFAULT_WAIT_NORM_S = 300.0


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (``--tenant-quota``).

    Parameters
    ----------
    max_inflight:
        Maximum concurrent dispatches (both priority classes) per
        tenant.  Interactive requests beyond it are rejected 429; bulk
        requests are never rejected by it — their lane is simply not
        eligible for admission until the tenant drops below the limit.
    max_backlog_share:
        Maximum fraction of the bulk queue bound (``max_queue``) one
        tenant may occupy, in ``(0, 1]``.  Arrivals beyond it are
        rejected 429 with a tenant-scoped reason while other tenants
        still queue freely.
    """

    max_inflight: int
    max_backlog_share: float = 0.5

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"tenant max_inflight must be >= 1: {self.max_inflight}"
            )
        if not (0.0 < self.max_backlog_share <= 1.0):
            raise ConfigurationError(
                f"tenant max_backlog_share must be in (0, 1]: "
                f"{self.max_backlog_share}"
            )

    @classmethod
    def parse(cls, spec: str) -> "TenantQuota":
        """Parse an ``INFLIGHT[:BACKLOG_SHARE]`` CLI spec."""
        head, _, tail = spec.partition(":")
        try:
            max_inflight = int(head)
        except ValueError:
            raise ConfigurationError(
                f"bad --tenant-quota {spec!r}: expected "
                f"INFLIGHT[:BACKLOG_SHARE]"
            ) from None
        if not tail:
            return cls(max_inflight=max_inflight)
        try:
            share = float(tail)
        except ValueError:
            raise ConfigurationError(
                f"bad --tenant-quota {spec!r}: backlog share must be a "
                f"number in (0, 1]"
            ) from None
        return cls(max_inflight=max_inflight, max_backlog_share=share)

    def max_backlog(self, max_queue: int) -> int:
        """The per-tenant bulk queue bound for a ``max_queue``-deep
        queue: at least 1, so a quota never blocks a tenant's first
        queued request."""
        return max(1, int(self.max_backlog_share * max_queue + 1e-9))


@dataclass
class TenantTicket:
    """One queued bulk admission: an opaque payload (the daemon stores
    an ``asyncio.Event``) tagged with its tenant, a global arrival
    sequence number (the deterministic tie-break) and its enqueue
    time (the starvation-guard wait term)."""

    tenant: str
    seq: int
    enqueued_at: float
    item: object


class TenantFairQueue:
    """Per-tenant FIFO lanes dequeued in paper-priority order.

    Within a tenant, order is strictly FIFO (a tenant cannot overtake
    itself).  Across tenants, :meth:`pop` picks the lane whose head
    maximizes::

        score = tracker.factor(tenant, now) + waited / wait_norm_s

    with ties broken by arrival sequence (earliest first) — the exact
    shape of :class:`~repro.sched.priority.PriorityPolicy.score` with
    the day-scale wait weight rescaled to request timescales.  All
    inputs (clock, tracker) are injected, so the ordering is a pure
    function of charge history and arrival order: same tenant mix +
    same charges → identical dequeue order.
    """

    def __init__(
        self,
        tracker: FairShareTracker,
        *,
        wait_norm_s: float = DEFAULT_WAIT_NORM_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if wait_norm_s <= 0:
            raise ConfigurationError(
                f"wait_norm_s must be positive: {wait_norm_s}"
            )
        self.tracker = tracker
        self.wait_norm_s = wait_norm_s
        self._clock = clock
        self._lanes: Dict[str, Deque[TenantTicket]] = {}
        self._seq = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        """Queued tickets for one tenant."""
        lane = self._lanes.get(tenant)
        return len(lane) if lane else 0

    def tenants(self) -> Iterable[str]:
        """Tenants with at least one queued ticket."""
        return [t for t, lane in self._lanes.items() if lane]

    def push(self, tenant: str, item: object) -> TenantTicket:
        """Append ``item`` to ``tenant``'s lane; returns its ticket."""
        ticket = TenantTicket(
            tenant=tenant,
            seq=self._seq,
            enqueued_at=self._clock(),
            item=item,
        )
        self._seq += 1
        self._lanes.setdefault(tenant, deque()).append(ticket)
        self._size += 1
        return ticket

    def _score(self, ticket: TenantTicket, now: float) -> float:
        waited = max(0.0, now - ticket.enqueued_at)
        return (
            self.tracker.factor(ticket.tenant, now)
            + waited / self.wait_norm_s
        )

    def pop(
        self, eligible: Optional[Callable[[str], bool]] = None
    ) -> Optional[TenantTicket]:
        """Dequeue the highest-priority head ticket among lanes whose
        tenant passes ``eligible`` (all lanes when ``None``); returns
        ``None`` when the queue is empty or no lane is eligible (the
        caller waits — quota back-off defers, it never drops)."""
        now = self._clock()
        best: Optional[Tuple[float, int]] = None
        best_tenant: Optional[str] = None
        for tenant, lane in self._lanes.items():
            if not lane:
                continue
            if eligible is not None and not eligible(tenant):
                continue
            head = lane[0]
            key = (-self._score(head, now), head.seq)
            if best is None or key < best:
                best = key
                best_tenant = tenant
        if best_tenant is None:
            return None
        lane = self._lanes[best_tenant]
        ticket = lane.popleft()
        if not lane:
            del self._lanes[best_tenant]
        self._size -= 1
        return ticket


class TenantAdmission:
    """Tenancy bookkeeping for one service instance.

    Owns the fair-share tracker (charged with actual service seconds),
    the runtime predictor (tenants as "users": it learns each tenant's
    actual/quoted service-time ratio and corrects Retry-After quotes),
    the fair queue, and per-tenant in-flight counts.

    All methods are synchronous and loop-thread-only, mirroring the
    daemon's single-owner state discipline.
    """

    def __init__(
        self,
        *,
        quota: Optional[TenantQuota] = None,
        half_life_s: float = DEFAULT_TENANT_HALF_LIFE_S,
        wait_norm_s: float = DEFAULT_WAIT_NORM_S,
        shares: Optional[Dict[str, float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quota = quota
        self.tracker = FairShareTracker(
            half_life_s=half_life_s, shares=shares
        )
        self.predictor = PerUserRuntimePredictor()
        self.queue = TenantFairQueue(
            self.tracker, wait_norm_s=wait_norm_s, clock=clock
        )
        self._clock = clock
        self._inflight: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def inflight_of(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def queued_of(self, tenant: str) -> int:
        return self.queue.depth(tenant)

    def pending_of(self, tenant: str) -> int:
        """Queued + dispatched work for one tenant — the depth term of
        its tenant-scoped Retry-After."""
        return self.queued_of(tenant) + self.inflight_of(tenant)

    def eligible(self, tenant: str) -> bool:
        """May the admission loop grant this tenant another dispatch
        right now?  (Quota-full tenants defer; they are never
        dropped.)"""
        if self.quota is None:
            return True
        return self.inflight_of(tenant) < self.quota.max_inflight

    # ------------------------------------------------------------------
    def begin_dispatch(self, tenant: str) -> None:
        """Account one dispatch entering the pool for ``tenant``."""
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1

    def end_dispatch(
        self, tenant: str, service_s: float, estimate_s: float
    ) -> None:
        """Account one dispatch leaving the pool: decrement in-flight,
        charge the tenant's decayed usage with the *actual* pool
        seconds consumed (success or failure — the pool time is spent
        either way), and teach the predictor the actual/quoted ratio.
        """
        count = self._inflight.get(tenant, 0) - 1
        if count > 0:
            self._inflight[tenant] = count
        else:
            self._inflight.pop(tenant, None)
        if service_s > 0.0:
            self.tracker.charge(tenant, service_s, self._clock())
            self.predictor.observe_ratio(tenant, service_s, estimate_s)

    # ------------------------------------------------------------------
    def predicted_service_time(
        self, tenant: Optional[str], base_estimate_s: float
    ) -> float:
        """Predictor-corrected per-request service time for a tenant:
        the base estimate (the tenant's own observed mean, or the
        global fallback chain) scaled by the tenant's learned
        actual/quoted ratio.  An unknown tenant has ratio 1.0, so this
        degrades to exactly the pre-tenancy heuristic."""
        user = tenant if tenant is not None else DEFAULT_TENANT
        return base_estimate_s * self.predictor.ratio(user)


class WorkerAutoscaler:
    """Cap-aware worker-pool autoscaler (``--autoscale MIN:MAX``).

    The Table 8 continual-mode loop, applied to capacity instead of
    admission: each tick observes the same signals the admission loop
    gates on —

    * **grow** when bulk work is queued but the utilization cap leaves
      no interstice (``(busy + 1) / workers > bulk_cap``): add one
      worker, up to ``maximum``.  Growing the pool is how the cap's
      *absolute* bulk throughput rises without loosening the cap
      itself — interactive headroom scales with the pool.
    * **shrink** when the backlog is empty and utilization has fallen
      to ``shrink_util`` of the cap or below: drop one worker, down to
      ``minimum``.

    Both transitions require ``patience`` consecutive qualifying ticks
    (hysteresis against transient bursts).  :meth:`tick` is pure
    decision logic over the service's public signals, so tests drive
    it synchronously; the daemon runs :meth:`run` as a background task
    that ticks every ``interval`` seconds.
    """

    def __init__(
        self,
        service: "object",
        minimum: int,
        maximum: int,
        *,
        interval: float = 2.0,
        patience: int = 2,
        shrink_util: float = 0.5,
    ) -> None:
        if minimum < 1:
            raise ConfigurationError(
                f"autoscale minimum must be >= 1: {minimum}"
            )
        if maximum < minimum:
            raise ConfigurationError(
                f"autoscale maximum must be >= minimum: "
                f"{maximum} < {minimum}"
            )
        if interval <= 0:
            raise ConfigurationError(
                f"autoscale interval must be positive: {interval}"
            )
        if patience < 1:
            raise ConfigurationError(
                f"autoscale patience must be >= 1: {patience}"
            )
        if not (0.0 <= shrink_util < 1.0):
            raise ConfigurationError(
                f"autoscale shrink_util must be in [0, 1): {shrink_util}"
            )
        self.service = service
        self.minimum = minimum
        self.maximum = maximum
        self.interval = interval
        self.patience = patience
        self.shrink_util = shrink_util
        self._grow_streak = 0
        self._shrink_streak = 0

    def decide(self) -> int:
        """The resize delta (+1, -1, or 0) for the current signals,
        updating the hysteresis streaks.  Does not apply anything."""
        service = self.service
        workers = service.workers
        blocked = (
            service.bulk_queue_depth() > 0 and not service._cap_allows()
        )
        idle = (
            service.bulk_queue_depth() == 0
            and service.utilization()
            <= self.shrink_util * service.config.bulk_cap + 1e-9
        )
        if blocked and workers < self.maximum:
            self._grow_streak += 1
            self._shrink_streak = 0
            if self._grow_streak >= self.patience:
                self._grow_streak = 0
                return 1
            return 0
        if idle and workers > self.minimum:
            self._shrink_streak += 1
            self._grow_streak = 0
            if self._shrink_streak >= self.patience:
                self._shrink_streak = 0
                return -1
            return 0
        self._grow_streak = 0
        self._shrink_streak = 0
        return 0

    async def tick(self) -> int:
        """One control-loop step: decide and apply.  Returns the delta
        applied (0 when steady)."""
        delta = self.decide()
        if delta:
            await self.service.resize_workers(self.service.workers + delta)
        return delta

    async def run(self) -> None:
        """Tick forever every ``interval`` seconds (daemon task;
        cancelled on service stop)."""
        while True:
            await asyncio.sleep(self.interval)
            await self.tick()
