"""Process-level entry point for ``repro serve``.

Owns everything that belongs to the *daemon process* rather than the
service object: the event loop, signal wiring and the shutdown order.
On SIGTERM/SIGINT the service first stops accepting (``/run`` answers
503, ``/healthz`` reports ``draining``), lets everything accepted —
running work and queued bulk — complete, then closes the listener and
shuts the pool down.  A clean drain exits 0, which is what the CI
smoke job asserts.  With ``--journal``, accepted bulk requests that
an *unclean* death (crash, SIGKILL) left unfinished are replayed on
the next boot — the startup banner reports how many.
"""

from __future__ import annotations

import asyncio
import signal
import sys

from repro.service.daemon import ServiceConfig, SimulationService
from repro.service.http import HttpFrontend


def run_service(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> int:
    """Boot the daemon and block until a termination signal has been
    handled and the service has drained.  Returns the exit code."""
    return asyncio.run(_serve(config, host, port))


async def _serve(config: ServiceConfig, host: str, port: int) -> int:
    service = SimulationService(config)
    await service.start()
    if service.journal is not None:
        print(
            f"repro serve: journal {config.journal_path} "
            f"({service.replayed} accepted request(s) replayed, "
            f"{service.journal.torn_records} torn record(s) dropped)",
            file=sys.stderr,
            flush=True,
        )
    frontend = HttpFrontend(service, host, port)
    await frontend.start()

    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(signum, lambda *_: shutdown.set())

    print(
        f"repro serve: listening on http://{host}:{frontend.port} "
        f"(workers={config.workers}, bulk_cap={config.bulk_cap}, "
        f"scale={config.effective_scale().name})",
        file=sys.stderr,
        flush=True,
    )
    await shutdown.wait()
    print("repro serve: draining...", file=sys.stderr, flush=True)
    # Refuse new work but keep /healthz `/metrics` observable while
    # accepted work completes; only then close the listener.
    await service.drain()
    await frontend.stop()
    await service.stop()
    counters = service.metrics.counters
    print(
        f"repro serve: drained cleanly ({counters.requests} requests, "
        f"{counters.computes} computes, {counters.cache_hits} cache "
        f"hits, {counters.coalesced_hits} coalesced)",
        file=sys.stderr,
        flush=True,
    )
    return 0
