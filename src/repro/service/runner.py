"""Process-level entry point for ``repro serve``.

Owns everything that belongs to the *daemon process* rather than the
service object: the event loop, signal wiring and the shutdown order.
On SIGTERM/SIGINT the service first stops accepting (``/run`` answers
503, ``/healthz`` reports ``draining``), lets everything accepted —
running work and queued bulk — complete, then closes the listener and
shuts the pool down.  A clean drain exits 0, which is what the CI
smoke job asserts.  With ``--journal``, accepted bulk requests that
an *unclean* death (crash, SIGKILL) left unfinished are replayed on
the next boot — the startup banner reports how many.

Every daemon is a fleet replica (see :mod:`repro.service.fleet`): a
bare boot is a single-member fleet — behaviorally identical to the
pre-fleet daemon — and the coordinator other daemons can join.  With
``--join HOST:PORT`` the boot registers with the coordinator at that
address, adopts its assigned replica id, and starts serving its share
of the consistent-hash ring.  The fleet shutdown order extends the
solo one: stop stealing/granting first, settle the bulk backlog and
any stolen-out entries, then drain the local service as before.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional, Tuple

from repro.errors import ServiceError
from repro.service.daemon import ServiceConfig, SimulationService
from repro.service.fleet import FleetConfig, FleetMember
from repro.service.http import HttpFrontend


def run_service(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8765,
    join: Optional[Tuple[str, int]] = None,
) -> int:
    """Boot the daemon and block until a termination signal has been
    handled and the service has drained.  Returns the exit code.

    ``join=(host, port)`` makes this daemon register with the fleet
    coordinator at that address instead of coordinating itself.
    """
    return asyncio.run(_serve(config, host, port, join))


async def _serve(
    config: ServiceConfig,
    host: str,
    port: int,
    join: Optional[Tuple[str, int]] = None,
) -> int:
    service = SimulationService(config)
    await service.start()
    if service.journal is not None:
        print(
            f"repro serve: journal {config.journal_path} "
            f"({service.replayed} accepted request(s) replayed, "
            f"{service.journal.torn_records} torn record(s) dropped)",
            file=sys.stderr,
            flush=True,
        )
    member = FleetMember(
        service, FleetConfig(coordinator=join is None)
    )
    await member.start()
    frontend = HttpFrontend(service, host, port, member=member)
    await frontend.start()
    member.set_advertise(host, frontend.port)
    if join is not None:
        try:
            reply = await member.join(join[0], join[1])
        except (ServiceError, OSError) as exc:
            print(
                f"repro serve: failed to join fleet at "
                f"{join[0]}:{join[1]}: {exc}",
                file=sys.stderr,
                flush=True,
            )
            await frontend.stop()
            await member.finish_close()
            await service.stop()
            return 1
        print(
            f"repro serve: joined fleet as {reply['id']} "
            f"({len(reply['members'])} replica(s), coordinator "
            f"{join[0]}:{join[1]})",
            file=sys.stderr,
            flush=True,
        )

    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(signum, lambda *_: shutdown.set())

    extras = ""
    if config.tenant_quota is not None:
        quota = config.tenant_quota
        extras += (
            f", tenant_quota={quota.max_inflight}"
            f":{quota.max_backlog_share}"
        )
    if config.autoscale_min is not None:
        extras += (
            f", autoscale={config.autoscale_min}"
            f":{config.autoscale_max}"
        )
    print(
        f"repro serve: listening on http://{host}:{frontend.port} "
        f"(workers={config.workers}, bulk_cap={config.bulk_cap}, "
        f"scale={config.effective_scale().name}, "
        f"replica={member.replica_id}{extras})",
        file=sys.stderr,
        flush=True,
    )
    await shutdown.wait()
    print("repro serve: draining...", file=sys.stderr, flush=True)
    # Fleet-aware drain: stop acquiring work (no new backlog entries,
    # no steals in either direction), settle the backlog and any
    # stolen-out entries, then run the solo drain — refuse new work
    # but keep /healthz `/metrics` observable while accepted work
    # completes; only then close the listener.
    member.begin_close()
    await member.wait_idle()
    await service.drain()
    await frontend.stop()
    await member.finish_close()
    await service.stop()
    counters = service.metrics.counters
    print(
        f"repro serve: drained cleanly ({counters.requests} requests, "
        f"{counters.computes} computes, {counters.cache_hits} cache "
        f"hits, {counters.coalesced_hits} coalesced)",
        file=sys.stderr,
        flush=True,
    )
    return 0
