"""Self-healing machinery for the serving daemon.

PR 1 taught the *simulated* cluster to survive node failures; this
module applies the same kill/re-credit discipline to the serving layer
itself, so a single daemon can crash, heal and resume without losing
or corrupting accepted work.  Two pieces:

* :class:`BulkJournal` — a durable, append-only JSONL write-ahead log
  of accepted bulk requests and their terminal states.  An ``accept``
  record is fsynced (group-committed by the daemon) before the request
  is admitted, so a crash or SIGKILL between acceptance and completion
  leaves a replayable record; on restart :meth:`BulkJournal.recover`
  returns every accepted-but-unsettled entry for re-execution.  A torn
  final record (the crash interrupted the write itself) is truncated
  away — it was never acknowledged durable.  Settle records are
  flushed but not fsynced: losing one only costs an idempotent,
  cache-absorbed recompute.  The log self-compacts once enough settled
  pairs accumulate.

* :class:`WorkerSupervisor` — owns the worker pool on behalf of the
  service and wraps every dispatch in deadline, crash-recovery and
  retry semantics: a worker that crashes (``BrokenExecutor``) or hangs
  past the per-request deadline costs the pool one *generation* — the
  supervisor abandons the old executor (best-effort terminating its
  processes) and builds a fresh one — and the victim request is
  re-executed under the existing :class:`~repro.faults.RetryPolicy`
  (exponential backoff, dead-letter after the attempt budget, all
  surfaced in ``/metrics``).  An optional heartbeat probes an idle
  pool so a silently-broken executor is replaced before the next real
  request pays for the discovery.

Both classes are event-loop confined (no locks): the daemon calls them
only from its loop thread, worker computations being the only thing
that leaves it.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from concurrent.futures import BrokenExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import DeadLetterError, ServiceError
from repro.faults import RetryPolicy
from repro.obs import ServiceCounters

#: Service-appropriate retry defaults: the simulation is deterministic
#: and seconds-scale, so short backoffs and a small budget suffice —
#: a request that kills three pools in a row is dead-lettered.
DEFAULT_SERVICE_RETRY = RetryPolicy(
    max_attempts=2, base_delay=0.1, backoff_factor=2.0, max_delay=2.0
)

#: Journal terminal outcomes.
COMPLETED = "completed"
FAILED = "failed"
DEAD_LETTERED = "dead_lettered"
OUTCOMES = (COMPLETED, FAILED, DEAD_LETTERED)


def _ping() -> int:  # pragma: no cover - trivial, runs in workers
    """Heartbeat probe dispatched to the pool (picklable, instant)."""
    return os.getpid()


class BulkJournal:
    """Durable JSONL write-ahead log of accepted bulk requests.

    Record grammar (one JSON object per line, sorted keys)::

        {"experiment": E, "id": N, "key": K, "rec": "accept",
         "scale": S|null, "seed": I|null[, "tenant": T]}
        {"id": N, "outcome": "completed|failed|dead_lettered",
         "rec": "settle"}

    ``id`` is a monotonically increasing per-journal sequence number;
    an entry is *open* while its accept has no settle.  All methods
    must be called from one thread (the daemon's event loop).

    The ``tenant`` field (v2) is omitted when the request named no
    tenant, which makes default-tenant records byte-identical to the
    pre-tenancy (v1) grammar; recovery of a v1 journal simply reads
    the missing field as "default tenant", so attribution survives a
    crash in both directions.

    Parameters
    ----------
    path:
        Journal file location (parent directories are created).
    compact_every:
        Rewrite the log keeping only open entries once this many
        settles have accumulated since the last compaction.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        compact_every: int = 512,
    ) -> None:
        if compact_every < 1:
            raise ServiceError(
                f"compact_every must be >= 1: {compact_every}"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.compact_every = compact_every
        self._fh: Optional[Any] = None
        self._open: Dict[int, Dict[str, Any]] = {}
        self._next_id = 1
        self._settled_since_compact = 0
        self._dirty = False
        #: Undecodable lines seen during recovery (a truncated tail
        #: from a crash mid-append, or interior corruption).
        self.torn_records = 0
        #: fsync batches issued (each may cover many appends).
        self.fsyncs = 0

    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        return len(self._open)

    def open_entries(self) -> List[Dict[str, Any]]:
        """Accepted-but-unsettled records, in acceptance order."""
        return [self._open[i] for i in sorted(self._open)]

    # ------------------------------------------------------------------
    def recover(self) -> List[Dict[str, Any]]:
        """Replay the on-disk log into memory and return the open
        entries.

        A trailing record without a newline, or one that does not
        decode, is a *torn write* — the crash interrupted the append —
        and is truncated off the file (it was never acknowledged as
        durable, so dropping it is correct).  An undecodable line
        *followed by* valid records is interior corruption: it is
        counted and skipped, but later records are kept.
        """
        accepts, _settles, open_entries, torn, keep_bytes = _scan(
            self.path
        )
        self.torn_records += torn
        self._open = {rec["id"]: rec for rec in open_entries}
        self._next_id = max((rec["id"] for rec in accepts), default=0) + 1
        try:
            size = self.path.stat().st_size
        except OSError:
            size = keep_bytes
        if keep_bytes < size:
            # Drop the torn tail so future appends start on a clean
            # line boundary instead of concatenating into the garbage.
            with self.path.open("r+b") as fh:
                fh.truncate(keep_bytes)
        return self.open_entries()

    # ------------------------------------------------------------------
    def record_accept(
        self,
        *,
        key: str,
        experiment: str,
        scale: Optional[str],
        seed: Optional[int],
        tenant: Optional[str] = None,
    ) -> int:
        """Append an ``accept`` record; returns its journal id.

        The record is written and flushed but **not** fsynced — call
        :meth:`sync` (the daemon group-commits one fsync per event-loop
        tick) before treating the acceptance as durable.
        """
        entry_id = self._next_id
        self._next_id += 1
        rec = {
            "rec": "accept",
            "id": entry_id,
            "key": key,
            "experiment": experiment,
            "scale": scale,
            "seed": seed,
        }
        if tenant is not None:
            rec["tenant"] = tenant
        self._append(rec)
        self._open[entry_id] = rec
        return entry_id

    def record_settle(self, entry_id: int, outcome: str) -> None:
        """Append the terminal state for ``entry_id``.

        Idempotent: settling an already-settled (or unknown) id is a
        no-op, which is what guarantees at most one terminal record
        per accept even when a replayed entry races a late completion.
        """
        if outcome not in OUTCOMES:
            raise ServiceError(
                f"outcome must be one of {OUTCOMES}: {outcome!r}"
            )
        if entry_id not in self._open:
            return
        self._append({"rec": "settle", "id": entry_id, "outcome": outcome})
        del self._open[entry_id]
        self._settled_since_compact += 1
        if self._settled_since_compact >= self.compact_every:
            self.compact()

    def sync(self) -> None:
        """fsync any appends since the last sync (no-op when clean)."""
        if not self._dirty or self._fh is None:
            return
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._dirty = False

    def compact(self) -> None:
        """Rewrite the log keeping only open accepts (atomic rename,
        fsynced), dropping every settled accept/settle pair."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        fd, tmp = tempfile.mkstemp(
            prefix=".journal-", suffix=".tmp", dir=str(self.path.parent)
        )
        with os.fdopen(fd, "wb") as fh:
            for rec in self.open_entries():
                fh.write(_encode(rec))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.fsyncs += 1
        self._settled_since_compact = 0
        self._dirty = False

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    def _append(self, rec: Dict[str, Any]) -> None:
        if self._fh is None:
            self._fh = self.path.open("ab")
        self._fh.write(_encode(rec))
        self._fh.flush()
        self._dirty = True

    @staticmethod
    def read(path: Union[str, Path]) -> Tuple[
        List[Dict[str, Any]], List[Dict[str, Any]], int
    ]:
        """Static inspection helper: ``(accepts, settles, torn)`` for
        the journal at ``path`` (tests and the chaos harness)."""
        accepts, settles, _open, torn, _keep = _scan(Path(path))
        return accepts, settles, torn


def _encode(rec: Dict[str, Any]) -> bytes:
    return (
        json.dumps(rec, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def _scan(path: Path) -> Tuple[
    List[Dict[str, Any]],
    List[Dict[str, Any]],
    List[Dict[str, Any]],
    int,
    int,
]:
    """Parse a journal file tolerantly.

    Returns ``(accepts, settles, open_entries, torn, keep_bytes)``
    where ``keep_bytes`` is the length of the longest prefix ending on
    a newline (the valid portion a recovery may truncate to).
    """
    accepts: List[Dict[str, Any]] = []
    settles: List[Dict[str, Any]] = []
    open_by_id: Dict[int, Dict[str, Any]] = {}
    torn = 0
    try:
        raw = path.read_bytes()
    except OSError:
        return accepts, settles, [], torn, 0
    pos = 0
    keep = 0
    while pos < len(raw):
        nl = raw.find(b"\n", pos)
        if nl == -1:
            torn += 1  # unterminated tail: the append was interrupted
            break
        line = raw[pos:nl]
        pos = nl + 1
        keep = pos
        try:
            rec = json.loads(line)
            kind, entry_id = rec["rec"], int(rec["id"])
        except (ValueError, KeyError, TypeError):
            torn += 1
            continue
        if kind == "accept":
            accepts.append(rec)
            open_by_id[entry_id] = rec
        elif kind == "settle":
            settles.append(rec)
            open_by_id.pop(entry_id, None)
        else:
            torn += 1
    open_entries = [open_by_id[i] for i in sorted(open_by_id)]
    return accepts, settles, open_entries, torn, keep


class WorkerSupervisor:
    """Owns the worker pool; dispatches with deadlines, crash
    replacement and bounded retries.

    State machine per dispatch::

        attempt -> ok ............................ return result
                -> worker exception .............. raise (deterministic
                                                   failure, no retry)
                -> crash / hang / unusable pool .. replace pool
                                                   (generation += 1),
                   retry allowed? ... backoff, re-attempt
                   budget exhausted . raise DeadLetterError

    Only *infrastructure* failures are retried — ``BrokenExecutor``
    (a worker process died), a missed per-request deadline, or a pool
    that refuses submissions.  An exception raised *by* the worker
    function travels straight back to the caller: the computation is
    deterministic, so re-running it would fail identically.

    Parameters
    ----------
    pool_factory:
        ``workers -> executor``; also used to build replacements.
    workers:
        Pool width handed to the factory.
    counters:
        The service's :class:`~repro.obs.ServiceCounters`, incremented
        for retries/dead-letters/replacements/timeouts.
    retry:
        :class:`~repro.faults.RetryPolicy` bounding re-execution.
    request_timeout:
        Per-dispatch deadline in seconds (``None`` disables).
    heartbeat_interval:
        Probe an *idle* pool every this many seconds with a trivial
        task; replace it on failure (``None`` disables).
    """

    def __init__(
        self,
        pool_factory: Callable[[int], Any],
        workers: int,
        *,
        counters: Optional[ServiceCounters] = None,
        retry: RetryPolicy = DEFAULT_SERVICE_RETRY,
        request_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        self._pool_factory = pool_factory
        self._workers = workers
        self.counters = counters if counters is not None else ServiceCounters()
        self.retry = retry
        self.request_timeout = request_timeout
        self.heartbeat_interval = heartbeat_interval
        self._pool: Optional[Any] = None
        self._generation = 0
        self._active = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._heartbeat_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Pool incarnation number (starts at 0, +1 per replacement)."""
        return self._generation

    @property
    def active(self) -> int:
        """Dispatches currently in flight."""
        return self._active

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pool = self._pool_factory(self._workers)
        if self.heartbeat_interval is not None:
            self._heartbeat_task = self._loop.create_task(
                self._heartbeat_loop()
            )

    async def stop(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await self._loop.run_in_executor(None, pool.shutdown, True)

    def resize(self, workers: int) -> None:
        """Swap the pool for one of ``workers`` processes (autoscaler
        entry point).

        Unlike :meth:`_replace`, the old pool is healthy: it is shut
        down *without* cancelling, so in-flight dispatches run to
        completion on the old processes while new dispatches land on
        the resized pool.  Does not count as a ``worker_replacement``
        (nothing failed), but the generation does advance: a dispatch
        still riding the retired pool that breaks must not tear down
        the fresh pool — its ``_replace`` call no-ops on the stale
        generation and the retry simply lands on the new pool.
        """
        if workers < 1:
            raise ServiceError(f"workers must be >= 1: {workers}")
        self._workers = workers
        if self._pool is None:
            return
        self._generation += 1
        old, self._pool = self._pool, self._pool_factory(workers)
        try:
            old.shutdown(wait=False)
        except Exception:  # noqa: BLE001 - a broken pool may refuse
            pass

    # ------------------------------------------------------------------
    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Execute ``fn(*args)`` on the pool with full supervision."""
        attempts = 0
        while True:
            pool, generation = self._pool, self._generation
            if pool is None:
                raise ServiceError("supervisor is stopped")
            self._active += 1
            try:
                try:
                    future = self._loop.run_in_executor(pool, fn, *args)
                except RuntimeError as exc:
                    # executor.submit() raises RuntimeError
                    # synchronously when the pool (or interpreter) has
                    # shut down; a RuntimeError raised *by the worker*
                    # surfaces on the await below and propagates
                    # unretried like any other worker exception.
                    self._replace(generation)
                    failure = f"worker pool unusable: {exc}"
                else:
                    try:
                        if self.request_timeout is not None:
                            return await asyncio.wait_for(
                                future, self.request_timeout
                            )
                        return await future
                    except asyncio.TimeoutError:
                        self.counters.request_timeouts += 1
                        self._replace(generation)
                        failure = (
                            f"request exceeded its {self.request_timeout}s "
                            f"deadline (hung worker replaced)"
                        )
                    except BrokenExecutor as exc:
                        self._replace(generation)
                        failure = (
                            f"worker pool broke: "
                            f"{exc or type(exc).__name__}"
                        )
            finally:
                self._active -= 1
            attempts += 1
            if not self.retry.allows(attempts):
                self.counters.dead_letters += 1
                raise DeadLetterError(
                    f"dead-lettered after {attempts} attempt(s): {failure}"
                )
            self.counters.retries += 1
            await asyncio.sleep(self.retry.delay(attempts))

    # ------------------------------------------------------------------
    def _replace(self, generation: int) -> None:
        """Swap in a fresh pool, once per failed generation (concurrent
        victims of the same broken pool share one replacement)."""
        if self._generation != generation or self._pool is None:
            return
        self._generation += 1
        self.counters.worker_replacements += 1
        old, self._pool = self._pool, self._pool_factory(self._workers)
        # Snapshot the worker processes *before* shutdown():
        # ProcessPoolExecutor.shutdown() sets _processes to None.
        # (Internals; absent on thread pools and fine to skip.)
        procs = list((getattr(old, "_processes", None) or {}).values())
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - a broken pool may refuse
            pass
        # Best effort: reap hung worker processes so they do not
        # accumulate.  SIGKILL, not SIGTERM: fork-started workers
        # inherit the daemon's asyncio signal handler and wakeup fd,
        # so a SIGTERM is swallowed by the worker and re-surfaces in
        # the *parent* loop as a phantom shutdown signal (observed:
        # the daemon drains itself after every pool replacement).
        for proc in procs:
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 - already dead is fine
                pass

    async def _heartbeat_loop(self) -> None:
        """Probe the pool while idle; a failed or overdue probe means
        the pool died between requests — replace it now so the next
        real request lands on a live one."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            if self._active or self._pool is None:
                continue  # in-flight dispatches are the health probe
            pool, generation = self._pool, self._generation
            try:
                await asyncio.wait_for(
                    self._loop.run_in_executor(pool, _ping),
                    max(self.heartbeat_interval, 1.0),
                )
            except (asyncio.TimeoutError, BrokenExecutor, RuntimeError):
                self._replace(generation)
