"""Scale-out serving: a consistent-hash sharded fleet of daemons.

PR 4–6 built one self-healing daemon; this module grows it into a
*fleet* that behaves like one big content-addressed service.  ``N``
``repro serve`` daemons self-assemble — the first boot is the
*coordinator*, later boots join it with ``repro serve --join
HOST:PORT`` — and agree on a deterministic
:class:`~repro.service.ring.HashRing` over replica ids.  Three
mechanisms make the fleet more than N isolated daemons:

* **Content-address routing** — every request's RunStore key (already
  a SHA-256, see :meth:`SimRequest.run_payload`) has exactly one ring
  *owner*.  A replica receiving a client request forwards it to the
  owner, so repeated configurations always land on the same replica
  and cache locality is structural rather than accidental.

* **Peer cache + replication** — when a replica computes a key it
  does not own (stolen work, or an unreachable owner), it first asks
  the owner's store (``peer_hits``/``peer_misses``) and, after
  computing, replicates the result back to the owner
  (``peer_replications``) — so the owner's store converges to hold
  everything it owns and the fleet answers repeats from cache no
  matter which replica computed first.  Values are immutable and
  deterministic, which is what makes this replication trivially
  consistent: any copy of a key is byte-identical, first write wins.

* **Work-stealing bulk sweeps** — bulk requests queue in a per-replica
  *backlog* in front of the admission cap (only ``bulk_slots()``
  dispatches are fed to the service at once, so the backlog stays
  visible).  An idle replica — empty backlog, admission slots free —
  polls peers and *steals* queued entries from their backlog tails
  (classic tail-stealing: the victim keeps its oldest, most
  cache-local work).  The victim parks the stolen entry's waiter and
  the thief reports the result back; a thief that dies simply times
  out and the victim re-enqueues (``steal_requeues``) — safe because
  every computation is deterministic and cache-absorbed.

Interactive requests never touch the backlog: they are forwarded to
their owner and dispatched immediately under that replica's own
Table 8-style utilization cap, exactly as on a single daemon.

Two transports implement the peer protocol: :class:`LocalTransport`
(direct coroutine calls, for the in-process fleets the tests, bench
and CI smoke build) and :class:`HttpPeerTransport` (persistent
keep-alive sockets against the peer's ``/fleet/*`` routes).  The
fleet logic cannot tell them apart.

See ``DESIGN.md`` §14 for the topology, join protocol, consistency
model and steal policy.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, ServiceError
from repro.service.client import ServiceReply
from repro.service.daemon import ServiceConfig, SimulationService
from repro.service.requests import (
    BULK,
    INTERACTIVE,
    ServiceResponse,
    SimRequest,
)
from repro.service.ring import DEFAULT_VNODES, HashRing
from repro.store import PEER_MISS, content_key


@dataclass
class FleetConfig:
    """Fleet-side tunables for one replica.

    Parameters
    ----------
    replica_id:
        Ring identity.  The coordinator is ``r0``; joining replicas
        are assigned ``r1``, ``r2``, ... by the coordinator.
    coordinator:
        Whether this replica assigns ids and membership (the first
        boot).  Joined replicas refuse ``/fleet/join`` with a 409.
    vnodes:
        Virtual ring points per replica (see :class:`HashRing`).
    max_backlog:
        Bulk backlog bound; arrivals beyond it bounce with 429
        backpressure (the fleet-level analogue of ``max_queue``).
    steal_batch:
        Most entries granted per steal request.
    steal_interval:
        Idle-poll period (seconds) of the steal loop.
    steal_timeout:
        Seconds a stolen entry may stay unreported before the victim
        re-enqueues it locally.
    """

    replica_id: str = "r0"
    coordinator: bool = True
    vnodes: int = DEFAULT_VNODES
    max_backlog: int = 1024
    steal_batch: int = 2
    steal_interval: float = 0.05
    steal_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.max_backlog < 1:
            raise ConfigurationError(
                f"max_backlog must be >= 1: {self.max_backlog}"
            )
        if self.steal_batch < 1:
            raise ConfigurationError(
                f"steal_batch must be >= 1: {self.steal_batch}"
            )
        if self.steal_interval <= 0:
            raise ConfigurationError(
                f"steal_interval must be positive: {self.steal_interval}"
            )
        if self.steal_timeout <= 0:
            raise ConfigurationError(
                f"steal_timeout must be positive: {self.steal_timeout}"
            )


@dataclass
class _BulkEntry:
    """One queued bulk request in the stealable backlog."""

    entry_id: int
    request: SimRequest
    key: str
    #: Local waiter (None on stolen-in entries, whose result goes back
    #: to the victim instead).
    future: Optional["asyncio.Future[ServiceResponse]"] = None
    #: Victim replica + its entry id, set on stolen-in entries.
    victim: Optional[str] = None
    remote_id: Optional[int] = None
    #: Stolen-in entries must not be re-stolen (no ping-pong).
    stealable: bool = True


def _request_payload(request: SimRequest) -> Dict[str, Any]:
    """Wire form of a request (accepted by SimRequest.from_payload).

    The tenant id travels with the request: a forwarded or stolen
    entry is charged to the *originating* tenant's fair-share usage on
    whichever replica executes it (content addresses still exclude
    it)."""
    return {
        "experiment": request.experiment,
        "scale": request.scale,
        "seed": request.seed,
        "priority": request.priority,
        "tenant": request.tenant,
    }


class FleetMember:
    """One replica's fleet brain, wrapped around its
    :class:`SimulationService`.

    All coroutine methods must run on the service's event loop.  The
    HTTP front end and the transports are the only callers.
    """

    def __init__(
        self,
        service: SimulationService,
        config: Optional[FleetConfig] = None,
        *,
        transport_factory: Optional[
            Callable[[str, int], "HttpPeerTransport"]
        ] = None,
    ) -> None:
        self.service = service
        self.config = config or FleetConfig()
        self.replica_id = self.config.replica_id
        self.ring = HashRing(
            [self.replica_id], vnodes=self.config.vnodes
        )
        #: replica id -> transport (everyone but self).
        self.peers: Dict[str, Any] = {}
        self._transport_factory = transport_factory or (
            lambda host, port: HttpPeerTransport(host, port)
        )
        #: replica id -> (host, port) for members joined over HTTP.
        self._members: Dict[str, Tuple[str, int]] = {}
        self._next_index = 1
        self._advertise: Optional[Tuple[str, int]] = None
        self._backlog: Deque[_BulkEntry] = deque()
        self._stolen_out: Dict[int, _BulkEntry] = {}
        self._steal_timers: Dict[int, asyncio.TimerHandle] = {}
        self._entry_seq = 0
        self._pump_inflight = 0
        self._tasks: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._steal_task: Optional[asyncio.Task] = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the backlog pump and the steal loop (call once, on
        the event loop, after ``service.start()``)."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._pump_task = self._loop.create_task(self._pump_loop())
        self._steal_task = self._loop.create_task(self._steal_loop())

    def begin_close(self) -> None:
        """Stop acquiring work: no new backlog entries, no stealing,
        no steal grants.  In-flight and stolen-out work still settles."""
        self._closing = True

    async def wait_idle(self, timeout: float = 120.0) -> None:
        """Wait until the backlog is drained, every pumped dispatch
        finished and every stolen-out entry settled or re-enqueued."""
        deadline = self._loop.time() + timeout
        while (
            self._backlog
            or self._pump_inflight
            or self._stolen_out
        ):
            if self._loop.time() > deadline:
                raise ServiceError(
                    f"fleet member {self.replica_id} not idle after "
                    f"{timeout:.0f}s: backlog={len(self._backlog)} "
                    f"inflight={self._pump_inflight} "
                    f"stolen_out={len(self._stolen_out)}"
                )
            self._kick()
            await asyncio.sleep(0.01)

    async def finish_close(self) -> None:
        """Cancel the loops and close peer transports."""
        for task in (self._pump_task, self._steal_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._pump_task = self._steal_task = None
        for timer in self._steal_timers.values():
            timer.cancel()
        self._steal_timers.clear()
        for transport in self.peers.values():
            close = getattr(transport, "close", None)
            if close is not None:
                result = close()
                if asyncio.iscoroutine(result):
                    await result

    async def close(self) -> None:
        """begin_close + wait_idle + finish_close, in order."""
        self.begin_close()
        await self.wait_idle()
        await self.finish_close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self):
        return self.service.metrics.counters

    @property
    def replica_count(self) -> int:
        return len(self.ring)

    def backlog_depth(self) -> int:
        return len(self._backlog)

    def set_advertise(self, host: str, port: int) -> None:
        """Record the address peers can reach this replica at (the
        bound front-end port, known only after listen)."""
        self._advertise = (host, port)
        self._members[self.replica_id] = (host, port)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The service ``/metrics`` payload plus the fleet section."""
        snap = self.service.metrics_snapshot()
        snap["fleet"] = {
            "replica_id": self.replica_id,
            "replica_count": self.replica_count,
            "replicas": self.ring.replicas,
            "backlog_depth": len(self._backlog),
            "stolen_outstanding": len(self._stolen_out),
        }
        return snap

    async def fleet_metrics(self) -> Dict[str, Any]:
        """Fleet-aggregated metrics: every replica's snapshot plus
        summed service counters (transport failures surface as an
        ``error`` entry for that replica rather than failing the
        aggregation)."""
        per: Dict[str, Any] = {self.replica_id: self.metrics_snapshot()}
        for rid in sorted(self.peers):
            try:
                per[rid] = await self.peers[rid].metrics()
            except Exception as exc:  # noqa: BLE001 - peer boundary
                per[rid] = {"error": f"{type(exc).__name__}: {exc}"}
        totals: Dict[str, int] = {}
        tenant_totals: Dict[str, Dict[str, int]] = {}
        for snap in per.values():
            for name, value in snap.get("counters", {}).items():
                totals[name] = totals.get(name, 0) + int(value)
            for tname, tsnap in snap.get("tenants", {}).items():
                bucket = tenant_totals.setdefault(tname, {})
                for name, value in tsnap.get("counters", {}).items():
                    bucket[name] = bucket.get(name, 0) + int(value)
        return {
            "replica_count": self.replica_count,
            "replicas": per,
            "totals": totals,
            "tenant_totals": tenant_totals,
        }

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    async def submit(self, request: SimRequest) -> ServiceResponse:
        """Front-door entry: route by content address.  With a
        single-member ring this is exactly ``service.submit`` — a solo
        daemon keeps its PR 4–6 behavior bit for bit."""
        if self.replica_count <= 1:
            return await self.service.submit(request)
        validated = self._validate(request)
        if isinstance(validated, ServiceResponse):
            return validated
        key, _scale = validated
        owner = self.ring.owner(key)
        if owner == self.replica_id or owner not in self.peers:
            return await self.handle_owned(request, key)
        self.counters.forwards += 1
        try:
            status, payload = await self.peers[owner].run(
                _request_payload(request)
            )
            return ServiceResponse(status, payload)
        except Exception:  # noqa: BLE001 - degraded: owner unreachable
            return await self._run_remote_owned(request, key, owner)

    async def handle_routed(
        self, request: SimRequest
    ) -> ServiceResponse:
        """A peer routed ``request`` here because we own its key.
        Never re-forward (membership skew between two replicas must
        not bounce a request around the ring)."""
        validated = self._validate(request)
        if isinstance(validated, ServiceResponse):
            return validated
        key, _scale = validated
        return await self.handle_owned(request, key)

    async def handle_owned(
        self, request: SimRequest, key: str
    ) -> ServiceResponse:
        """Serve a request whose key this replica owns."""
        if request.priority == INTERACTIVE:
            # Natives dispatch immediately under the local cap.
            return await self.service.submit(request)
        if (
            self.service.has_cached(key)
            or self.service.is_inflight(key)
        ):
            # Fast path: the answer exists (or is being computed) —
            # service.submit resolves it without a pool dispatch.
            return await self.service.submit(request)
        if self._closing or self.service.draining:
            self.counters.drain_rejections += 1
            return ServiceResponse(
                503,
                {"status": "draining", "error": "service is draining"},
            )
        tenant = request.effective_tenant
        quota = self.service.config.tenant_quota
        if quota is not None:
            limit = quota.max_backlog(self.config.max_backlog)
            queued = sum(
                1
                for e in self._backlog
                if e.request.effective_tenant == tenant
            )
            if queued >= limit:
                self.counters.rejections += 1
                self.counters.quota_rejections += 1
                tenant_counters = self.service.metrics.tenant(tenant)
                tenant_counters.rejections += 1
                tenant_counters.quota_rejections += 1
                retry_after = self._retry_after(queued, tenant)
                return ServiceResponse(
                    429,
                    {"status": "rejected",
                     "error": (
                         f"tenant {tenant!r} over fleet backlog share "
                         f"({queued}/{limit} queued)"
                     ),
                     "tenant": tenant, "quota": True,
                     "retry_after_s": retry_after},
                    retry_after=retry_after,
                )
        if len(self._backlog) >= self.config.max_backlog:
            self.counters.rejections += 1
            self.service.metrics.tenant(tenant).rejections += 1
            retry_after = self._retry_after(
                len(self._backlog), tenant
            )
            return ServiceResponse(
                429,
                {"status": "rejected", "error": "fleet backlog full",
                 "tenant": tenant, "retry_after_s": retry_after},
                retry_after=retry_after,
            )
        entry = self._new_entry(request, key)
        entry.future = self._loop.create_future()
        self._backlog.append(entry)
        self._kick()
        return await asyncio.shield(entry.future)

    def _validate(self, request: SimRequest):
        """400 response for a bad request, else ``(key, scale)``."""
        from repro.experiments.registry import SPECS

        try:
            if request.experiment not in SPECS:
                raise ServiceError(
                    f"unknown experiment {request.experiment!r}; "
                    f"see 'repro list'"
                )
            scale = request.resolve_scale(self.service.default_scale)
        except ServiceError as exc:
            return ServiceResponse(
                400, {"status": "error", "error": str(exc)}
            )
        return content_key(request.run_payload(scale)), scale

    def _retry_after(
        self, depth: int, tenant: Optional[str] = None
    ) -> float:
        base = self.service.metrics.estimated_service_time(
            BULK, tenant
        )
        per_request = self.service.tenancy.predicted_service_time(
            tenant, base
        )
        lanes = max(1, self.service.bulk_slots()) * max(
            1, self.replica_count
        )
        return max(1.0, depth * per_request / lanes)

    def _new_entry(self, request: SimRequest, key: str) -> _BulkEntry:
        self._entry_seq += 1
        return _BulkEntry(self._entry_seq, request, key)

    # ------------------------------------------------------------------
    # Peer protocol handlers (called by transports / HTTP routes)
    # ------------------------------------------------------------------
    def handle_cache_get(self, key: str) -> Tuple[bool, Any]:
        """Serve a peer's cache lookup: ``(hit, value)``.  Only JSON
        textual products travel the wire; anything else (a worker's
        pickled simulation product sharing the store) reports a miss."""
        value = self.service.store.peer_get(key)
        if value is PEER_MISS or not isinstance(value, str):
            return False, None
        return True, value

    def handle_cache_put(self, key: str, value: str) -> None:
        """Accept a result replicated by the non-owner that computed it."""
        self.service.store.peer_put(key, value)

    def handle_steal(
        self, thief: str, max_n: int
    ) -> List[Dict[str, Any]]:
        """Grant up to ``max_n`` backlog entries to ``thief`` (tail
        first, stealable only).  Granted entries are parked with a
        deadline: an unreported theft is re-enqueued locally."""
        granted: List[Dict[str, Any]] = []
        if self._closing or self.service.draining:
            return granted
        budget = max(0, min(max_n, self.config.steal_batch))
        while budget > len(granted):
            idx = next(
                (
                    i
                    for i in range(len(self._backlog) - 1, -1, -1)
                    if self._backlog[i].stealable
                ),
                None,
            )
            if idx is None:
                break
            entry = self._backlog[idx]
            del self._backlog[idx]
            self._stolen_out[entry.entry_id] = entry
            self._steal_timers[entry.entry_id] = self._loop.call_later(
                self.config.steal_timeout,
                self._steal_deadline,
                entry.entry_id,
            )
            self.counters.steals_granted += 1
            granted.append(
                {
                    "entry_id": entry.entry_id,
                    "request": _request_payload(entry.request),
                }
            )
        return granted

    def handle_stolen(
        self, entry_id: int, status: int, payload: Dict[str, Any]
    ) -> None:
        """A thief reports the outcome of a stolen entry."""
        timer = self._steal_timers.pop(entry_id, None)
        if timer is not None:
            timer.cancel()
        entry = self._stolen_out.pop(entry_id, None)
        if (
            entry is not None
            and entry.future is not None
            and not entry.future.done()
        ):
            entry.future.set_result(ServiceResponse(status, payload))

    def _steal_deadline(self, entry_id: int) -> None:
        """The thief never reported: take the entry back.  Safe even
        if the thief later completes — the settle is first-wins on the
        future, and any duplicate compute is deterministic and
        cache-absorbed."""
        self._steal_timers.pop(entry_id, None)
        entry = self._stolen_out.pop(entry_id, None)
        if entry is None:
            return
        self.counters.steal_requeues += 1
        self._backlog.append(entry)
        self._kick()

    # ------------------------------------------------------------------
    # Membership / join protocol
    # ------------------------------------------------------------------
    def members_payload(self) -> List[Dict[str, Any]]:
        return [
            {"id": rid, "host": host, "port": port}
            for rid, (host, port) in sorted(self._members.items())
        ]

    def handle_join(self, host: str, port: int) -> Dict[str, Any]:
        """Coordinator-side join: assign the next replica id, admit
        the newcomer, broadcast the membership to everyone else."""
        if not self.config.coordinator:
            raise ServiceError(
                "this replica is not the fleet coordinator; join via "
                "the first daemon"
            )
        rid = f"r{self._next_index}"
        self._next_index += 1
        self._members[rid] = (host, port)
        self.peers[rid] = self._transport_factory(host, port)
        self.ring.add(rid)
        members = self.members_payload()
        for peer_id in list(self.peers):
            if peer_id == rid:
                continue  # the newcomer learns from the join reply
            task = self._loop.create_task(
                self._push_membership(peer_id, members)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return {
            "id": rid,
            "members": members,
            "scale": self.service.default_scale.name,
        }

    async def _push_membership(
        self, peer_id: str, members: List[Dict[str, Any]]
    ) -> None:
        try:
            await self.peers[peer_id].membership(members)
        except Exception:  # noqa: BLE001 - peers catch up on next push
            pass

    def handle_membership(
        self, members: Sequence[Dict[str, Any]]
    ) -> None:
        """Adopt a membership broadcast: wire transports and ring
        points for members we have not met (append-only: the fleet
        has no leave protocol; see DESIGN §14)."""
        for rec in members:
            rid = rec["id"]
            self._members[rid] = (rec["host"], int(rec["port"]))
            if rid == self.replica_id or rid in self.peers:
                continue
            self.peers[rid] = self._transport_factory(
                rec["host"], int(rec["port"])
            )
            self.ring.add(rid)

    async def join(self, host: str, port: int) -> Dict[str, Any]:
        """Replica-side join: register with the coordinator at
        ``host:port``, adopt the assigned id and the member list."""
        if self._advertise is None:
            raise ServiceError(
                "set_advertise() must run before join() so peers can "
                "reach this replica"
            )
        transport = self._transport_factory(host, port)
        try:
            reply = await transport.join(
                self._advertise[0], self._advertise[1]
            )
        finally:
            close = getattr(transport, "close", None)
            if close is not None:
                result = close()
                if asyncio.iscoroutine(result):
                    await result
        old_id = self.replica_id
        self.replica_id = reply["id"]
        self._members.pop(old_id, None)
        self.set_advertise(*self._advertise)
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.ring.add(self.replica_id)
        self.handle_membership(reply["members"])
        return reply

    # ------------------------------------------------------------------
    # Backlog pump
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _pump_loop(self) -> None:
        """Feed the backlog into the service at the admission cap's
        width, leaving the excess where peers can steal it."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            slots = self.service.bulk_slots()
            while self._backlog and self._pump_inflight < slots:
                entry = self._backlog.popleft()
                self._pump_inflight += 1
                task = self._loop.create_task(self._drive(entry))
                self._tasks.add(task)
                task.add_done_callback(self._drive_done)

    def _drive_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        self._pump_inflight -= 1
        if not task.cancelled():
            task.exception()  # failures settle inside _drive
        self._kick()

    async def _drive(self, entry: _BulkEntry) -> None:
        """Execute one backlog entry (local or stolen) and settle it."""
        try:
            owner = self.ring.owner(entry.key)
            if owner == self.replica_id or owner not in self.peers:
                response = await self.service.submit(entry.request)
            else:
                response = await self._run_remote_owned(
                    entry.request, entry.key, owner
                )
        except Exception as exc:  # noqa: BLE001 - settle, never strand
            response = ServiceResponse(
                500,
                {"status": "error",
                 "error": f"{type(exc).__name__}: {exc}"},
            )
        await self._settle(entry, response)

    async def _run_remote_owned(
        self, request: SimRequest, key: str, owner: str
    ) -> ServiceResponse:
        """Compute a key owned by ``owner`` here: peer cache lookup
        first, replicate the result back after."""
        transport = self.peers.get(owner)
        if transport is not None:
            try:
                hit, value = await transport.cache_get(key)
            except Exception:  # noqa: BLE001 - lookup is best-effort
                hit, value = False, None
            if hit:
                self.counters.peer_hits += 1
                return self._peer_ok(request, key, value, owner)
            self.counters.peer_misses += 1
        response = await self.service.submit(request)
        if (
            transport is not None
            and response.ok
            and not response.payload.get("cached")
            and not response.payload.get("coalesced")
        ):
            try:
                await transport.cache_put(
                    key, response.payload["result"]
                )
                self.counters.peer_replications += 1
            except Exception:  # noqa: BLE001 - replication best-effort
                pass
        return response

    def _peer_ok(
        self, request: SimRequest, key: str, text: str, owner: str
    ) -> ServiceResponse:
        scale = request.resolve_scale(self.service.default_scale)
        return ServiceResponse(
            200,
            {
                "status": "ok",
                "experiment": request.experiment,
                "scale": scale.name,
                "seed": scale.seed,
                "priority": request.priority,
                "cached": True,
                "coalesced": False,
                "peer": owner,
                "elapsed_s": 0.0,
                "key": key,
                "result": text,
            },
        )

    async def _settle(
        self, entry: _BulkEntry, response: ServiceResponse
    ) -> None:
        if entry.victim is not None:
            transport = self.peers.get(entry.victim)
            if transport is None:
                return  # victim gone; its deadline requeues the entry
            try:
                await transport.stolen(
                    entry.remote_id, response.status, response.payload
                )
            except Exception:  # noqa: BLE001 - victim requeues on timeout
                pass
        elif entry.future is not None and not entry.future.done():
            entry.future.set_result(response)

    # ------------------------------------------------------------------
    # Steal loop (thief side)
    # ------------------------------------------------------------------
    def _steal_ready(self) -> bool:
        return (
            not self._closing
            and not self.service.draining
            and self.replica_count > 1
            and not self._backlog
            and self._pump_inflight < self.service.bulk_slots()
        )

    async def _steal_loop(self) -> None:
        rotation = 0
        while True:
            await asyncio.sleep(self.config.steal_interval)
            if not self._steal_ready():
                continue
            peer_ids = [
                rid for rid in self.ring.replicas
                if rid != self.replica_id and rid in self.peers
            ]
            if not peer_ids:
                continue
            for offset in range(len(peer_ids)):
                victim = peer_ids[(rotation + offset) % len(peer_ids)]
                try:
                    grants = await self.peers[victim].steal(
                        self.replica_id, self.config.steal_batch
                    )
                except Exception:  # noqa: BLE001 - victim unreachable
                    continue
                if not grants:
                    continue
                self.counters.steals += len(grants)
                for rec in grants:
                    request = SimRequest.from_payload(rec["request"])
                    validated = self._validate(request)
                    if isinstance(validated, ServiceResponse):
                        # Registry/scale drift between replicas:
                        # bounce the error straight back.
                        await self._report_stolen(
                            victim, rec["entry_id"], validated
                        )
                        continue
                    key, _scale = validated
                    entry = _BulkEntry(
                        self._next_entry_id(),
                        request,
                        key,
                        victim=victim,
                        remote_id=rec["entry_id"],
                        stealable=False,
                    )
                    self._backlog.append(entry)
                self._kick()
                break
            rotation += 1

    def _next_entry_id(self) -> int:
        self._entry_seq += 1
        return self._entry_seq

    async def _report_stolen(
        self, victim: str, remote_id: int, response: ServiceResponse
    ) -> None:
        transport = self.peers.get(victim)
        if transport is None:
            return
        try:
            await transport.stolen(
                remote_id, response.status, response.payload
            )
        except Exception:  # noqa: BLE001 - victim requeues on timeout
            pass


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class LocalTransport:
    """Peer transport for in-process fleets: direct coroutine calls
    into another :class:`FleetMember` on the same event loop."""

    def __init__(self, member: FleetMember) -> None:
        self._member = member

    async def run(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        response = await self._member.handle_routed(
            SimRequest.from_payload(payload)
        )
        return response.status, response.payload

    async def cache_get(self, key: str) -> Tuple[bool, Any]:
        return self._member.handle_cache_get(key)

    async def cache_put(self, key: str, value: str) -> None:
        self._member.handle_cache_put(key, value)

    async def steal(
        self, thief: str, max_n: int
    ) -> List[Dict[str, Any]]:
        return self._member.handle_steal(thief, max_n)

    async def stolen(
        self, entry_id: int, status: int, payload: Dict[str, Any]
    ) -> None:
        self._member.handle_stolen(entry_id, status, payload)

    async def metrics(self) -> Dict[str, Any]:
        return self._member.metrics_snapshot()

    async def membership(
        self, members: Sequence[Dict[str, Any]]
    ) -> None:
        self._member.handle_membership(members)


class HttpPeerTransport:
    """Peer transport over one persistent keep-alive HTTP connection.

    RPCs are serialized per peer (one in flight at a time) on an
    asyncio stream pair; a dead connection is re-opened and the RPC
    retried once.  A steal whose first attempt died in flight is safe
    to retry: if the victim *did* grant entries to the lost request,
    its steal deadline re-enqueues them.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    # ------------------------------------------------------------------
    async def run(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        return await self._request("POST", "/fleet/run", payload)

    async def cache_get(self, key: str) -> Tuple[bool, Any]:
        status, payload = await self._request(
            "GET", f"/fleet/cache/{key}"
        )
        if status == 200:
            return True, payload.get("value")
        return False, None

    async def cache_put(self, key: str, value: str) -> None:
        status, payload = await self._request(
            "POST", f"/fleet/cache/{key}", {"value": value}
        )
        if status != 200:
            raise ServiceError(
                f"peer cache put failed ({status}): "
                f"{payload.get('error')}"
            )

    async def steal(
        self, thief: str, max_n: int
    ) -> List[Dict[str, Any]]:
        status, payload = await self._request(
            "POST", "/fleet/steal", {"thief": thief, "max_n": max_n}
        )
        if status != 200:
            raise ServiceError(
                f"steal refused ({status}): {payload.get('error')}"
            )
        return payload.get("entries", [])

    async def stolen(
        self, entry_id: int, status: int, payload: Dict[str, Any]
    ) -> None:
        rstatus, rpayload = await self._request(
            "POST",
            "/fleet/stolen",
            {"entry_id": entry_id, "status": status,
             "payload": payload},
        )
        if rstatus != 200:
            raise ServiceError(
                f"stolen report refused ({rstatus}): "
                f"{rpayload.get('error')}"
            )

    async def metrics(self) -> Dict[str, Any]:
        status, payload = await self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"peer metrics failed ({status})")
        return payload

    async def join(self, host: str, port: int) -> Dict[str, Any]:
        status, payload = await self._request(
            "POST", "/fleet/join", {"host": host, "port": port}
        )
        if status != 200:
            raise ServiceError(
                f"join refused ({status}): {payload.get('error')}"
            )
        return payload

    async def membership(
        self, members: Sequence[Dict[str, Any]]
    ) -> None:
        status, payload = await self._request(
            "POST", "/fleet/membership", {"members": list(members)}
        )
        if status != 200:
            raise ServiceError(
                f"membership push refused ({status}): "
                f"{payload.get('error')}"
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:  # noqa: BLE001 - already dead is fine
                pass
        self._reader = self._writer = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.timeout,
        )

    async def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        import json

        encoded = (
            b"" if body is None else json.dumps(body).encode("utf-8")
        )
        message = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1") + encoded
        async with self._lock:
            last_exc: Optional[BaseException] = None
            for attempt in (0, 1):
                try:
                    if self._writer is None:
                        await self._connect()
                    self._writer.write(message)
                    await self._writer.drain()
                    return await asyncio.wait_for(
                        self._read_response(), self.timeout
                    )
                except (
                    ConnectionError,
                    OSError,
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                ) as exc:
                    last_exc = exc
                    self.close()
                    if attempt:
                        break
            raise ServiceError(
                f"peer {self.host}:{self.port} unreachable: "
                f"{type(last_exc).__name__}: {last_exc}"
            )

    async def _read_response(self) -> Tuple[int, Dict[str, Any]]:
        import json

        status_line = await self._reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(
                f"malformed peer status line: {status_line!r}"
            )
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("peer closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            self.close()
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        return status, payload


# ----------------------------------------------------------------------
# In-process fleet harness
# ----------------------------------------------------------------------
class LocalFleet:
    """An N-replica fleet on one background event loop, no sockets.

    The harness the fleet tests, ``bench_fleet.py`` and the CI smoke
    demo share: N independent :class:`SimulationService` instances
    (each with its own store — that separation is what makes peer
    caching observable), fully meshed over :class:`LocalTransport`,
    driven synchronously like
    :class:`~repro.service.client.InProcessClient`.

    Use as a context manager; ``__exit__`` drains every backlog and
    stops every service.
    """

    def __init__(
        self,
        replicas: int,
        *,
        service_config: Optional[ServiceConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
        pool_factory: Optional[Callable[[int], Any]] = None,
        worker_fn: Optional[Callable[..., str]] = None,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1: {replicas}"
            )
        base_service = service_config or ServiceConfig()
        base_fleet = fleet_config or FleetConfig()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        kwargs: Dict[str, Any] = {}
        if pool_factory is not None:
            kwargs["pool_factory"] = pool_factory
        if worker_fn is not None:
            kwargs["worker_fn"] = worker_fn
        self.members: List[FleetMember] = []
        for i in range(replicas):
            service = SimulationService(base_service, **kwargs)
            member = FleetMember(
                service,
                _replace_id(base_fleet, f"r{i}", coordinator=i == 0),
            )
            self.members.append(member)
        for member in self.members:
            for other in self.members:
                if other is member:
                    continue
                member.peers[other.replica_id] = LocalTransport(other)
                member.ring.add(other.replica_id)

    # ------------------------------------------------------------------
    @property
    def coordinator(self) -> FleetMember:
        return self.members[0]

    def __enter__(self) -> "LocalFleet":
        self._thread.start()
        for member in self.members:
            self._await(member.service.start())
            self._await(member.start())
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for member in self.members:
            member.begin_close()
        for member in self.members:
            self._await(member.wait_idle())
        for member in self.members:
            self._await(member.finish_close())
        for member in self.members:
            self._await(member.service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    # ------------------------------------------------------------------
    def run(
        self,
        experiment: str,
        *,
        scale: Optional[str] = None,
        seed: Optional[int] = None,
        priority: str = INTERACTIVE,
        tenant: Optional[str] = None,
        via: int = 0,
    ) -> ServiceReply:
        """Submit one request through replica ``via`` (default: the
        coordinator), blocking for the reply."""
        request = SimRequest(
            experiment=experiment, scale=scale, seed=seed,
            priority=priority, tenant=tenant,
        )
        response = self._await(self.members[via].submit(request))
        return ServiceReply(response.status, response.payload)

    def run_many(
        self,
        payloads: Sequence[Dict[str, Any]],
        *,
        via: int = 0,
    ) -> List[ServiceReply]:
        """Submit many request payloads concurrently (the concurrency
        that exercises routing, stealing and coalescing),
        order-preserving."""
        futures = [
            asyncio.run_coroutine_threadsafe(
                self.members[via].submit(SimRequest(**kw)), self._loop
            )
            for kw in payloads
        ]
        return [
            ServiceReply(r.status, r.payload)
            for r in (f.result() for f in futures)
        ]

    def metrics(self, via: int = 0) -> Dict[str, Any]:
        return self.members[via].metrics_snapshot()

    def fleet_metrics(self) -> Dict[str, Any]:
        return self._await(self.coordinator.fleet_metrics())

    # ------------------------------------------------------------------
    def _await(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout=300.0)


def _replace_id(
    config: FleetConfig, replica_id: str, *, coordinator: bool
) -> FleetConfig:
    from dataclasses import replace

    return replace(
        config, replica_id=replica_id, coordinator=coordinator
    )


# Re-exported for callers that only import the fleet module.
__all__ = [
    "FleetConfig",
    "FleetMember",
    "HttpPeerTransport",
    "LocalFleet",
    "LocalTransport",
]
