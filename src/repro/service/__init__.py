"""Simulation-as-a-service: the paper's admission policy, serving.

The repo's experiments have so far been one-shot CLI runs.  This
package is the long-lived serving layer on top of the same registry,
store and executor machinery: a stdlib-only asyncio daemon (``repro
serve``) that runs :class:`~repro.service.requests.SimRequest`\\ s on a
worker pool under the paper's two-class policy — interactive natives
dispatch immediately, bulk interstitials are admitted only into
utilization gaps below a cap — with content-addressed response
caching, in-flight request coalescing, bounded-queue backpressure and
graceful drain.  The :mod:`~repro.service.resilience` layer makes the
daemon self-healing: accepted bulk work is WAL-journaled and replayed
after a crash, crashed/hung workers are replaced with their requests
retried or dead-lettered, and corrupt store entries are quarantined
and recomputed.  The :mod:`~repro.service.fleet` layer scales the
daemon out: N replicas self-assemble over ``repro serve --join``,
route requests by content address across a deterministic
consistent-hash :class:`~repro.service.ring.HashRing`, answer repeats
from each other's caches, and work-steal queued bulk sweeps from
loaded peers.  See ``DESIGN.md`` §11 for the architecture, §12 for
the failure semantics and §14 for the fleet.
"""

from repro.service.client import (
    InProcessClient,
    ServiceClient,
    ServiceReply,
)
from repro.service.daemon import ServiceConfig, SimulationService
from repro.service.fleet import (
    FleetConfig,
    FleetMember,
    HttpPeerTransport,
    LocalFleet,
    LocalTransport,
)
from repro.service.http import HttpFrontend
from repro.service.metrics import LatencyStats, ServiceMetrics, percentile
from repro.service.requests import (
    BULK,
    DEFAULT_TENANT,
    INTERACTIVE,
    PRIORITIES,
    ServiceResponse,
    SimRequest,
)
from repro.service.resilience import (
    DEFAULT_SERVICE_RETRY,
    BulkJournal,
    WorkerSupervisor,
)
from repro.service.ring import DEFAULT_VNODES, HashRing
from repro.service.runner import run_service
from repro.service.tenancy import (
    DEFAULT_TENANT_HALF_LIFE_S,
    DEFAULT_WAIT_NORM_S,
    TenantAdmission,
    TenantFairQueue,
    TenantQuota,
    WorkerAutoscaler,
)

__all__ = [
    "DEFAULT_VNODES",
    "FleetConfig",
    "FleetMember",
    "HashRing",
    "HttpPeerTransport",
    "LocalFleet",
    "LocalTransport",
    "BULK",
    "DEFAULT_TENANT",
    "INTERACTIVE",
    "PRIORITIES",
    "SimRequest",
    "ServiceResponse",
    "ServiceConfig",
    "SimulationService",
    "ServiceMetrics",
    "LatencyStats",
    "percentile",
    "HttpFrontend",
    "ServiceClient",
    "InProcessClient",
    "ServiceReply",
    "BulkJournal",
    "WorkerSupervisor",
    "DEFAULT_SERVICE_RETRY",
    "DEFAULT_TENANT_HALF_LIFE_S",
    "DEFAULT_WAIT_NORM_S",
    "TenantAdmission",
    "TenantFairQueue",
    "TenantQuota",
    "WorkerAutoscaler",
    "run_service",
]
