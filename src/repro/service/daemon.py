"""The simulation service core: admission control over a worker pool.

:class:`SimulationService` is the asyncio orchestrator behind ``repro
serve``.  It dogfoods the paper's interstitial policy on its own
request queue:

* **interactive** requests are the natives: they go straight to the
  long-lived ``ProcessPoolExecutor`` pool (the PR-2 report executor's
  worker entry point, now shared);
* **bulk** requests are the interstitials: they wait in a bounded
  queue and are admitted one at a time, only while admitting one more
  job keeps pool utilization at or below ``bulk_cap`` — the service
  scheduling its own interstices, exactly the Table 8 utilization-cap
  loop at request granularity.

Layered on top of admission:

* **caching** — responses are rendered-table products in a
  content-addressed :class:`~repro.store.RunStore`, so a repeated
  configuration is answered without touching the pool;
* **coalescing** — concurrent requests hashing to the same content
  address share one in-flight computation (the leader computes,
  followers await its future);
* **backpressure** — a full bulk queue (or an over-committed
  interactive backlog) bounces the request with a 429-style response
  whose ``retry_after`` is computed from queue depth and observed
  latency;
* **graceful drain** — new work is refused while everything already
  accepted (queued bulk included) runs to completion.

The event loop owns all mutable state; only worker computations leave
the loop thread.  Tests can substitute the pool and the worker
function (``pool_factory`` / ``worker_fn``) to drive admission timing
deterministically without real simulations.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from repro.errors import ConfigurationError, ServiceError
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.executor import render_experiment
from repro.experiments.registry import SPECS
from repro.service.metrics import ServiceMetrics
from repro.service.requests import (
    BULK,
    INTERACTIVE,
    ServiceResponse,
    SimRequest,
)
from repro.store import RunStore, content_key
from repro.version import repro_version


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance.

    Parameters
    ----------
    workers:
        Worker-pool processes (the "machine size" the cap is over).
    bulk_cap:
        Utilization cap for bulk admission in ``(0, 1]``: a bulk job
        is admitted only while ``(busy + 1) / workers <= bulk_cap``.
        ``1.0`` disables the policy (bulk may fill the pool).
    max_queue:
        Bulk queue bound; arrivals beyond it are rejected with
        backpressure.
    max_backlog:
        Interactive overcommit bound: interactive requests are
        rejected once more than ``workers + max_backlog`` dispatches
        are in flight.
    scale:
        Default :class:`ExperimentScale` for requests that name none.
    store_path:
        Optional directory for the shared on-disk run store (response
        cache *and* the workers' simulation-product cache).
    check_invariants:
        Run worker simulations with the engine validator enabled.
    """

    workers: int = 2
    bulk_cap: float = 0.9
    max_queue: int = 64
    max_backlog: int = 8
    scale: Optional[ExperimentScale] = None
    store_path: Optional[str] = None
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {self.workers}")
        if not (0.0 < self.bulk_cap <= 1.0):
            raise ConfigurationError(
                f"bulk_cap must be in (0, 1]: {self.bulk_cap}"
            )
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1: {self.max_queue}"
            )
        if self.max_backlog < 0:
            raise ConfigurationError(
                f"max_backlog must be >= 0: {self.max_backlog}"
            )

    def effective_scale(self) -> ExperimentScale:
        return self.scale if self.scale is not None else current_scale()


class SimulationService:
    """Admission-controlled, cached, coalescing simulation runner.

    Lifecycle: construct, ``await start()``, serve ``await
    submit(request)`` calls, then ``await stop()`` (which drains).
    All coroutines must run on one event loop.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        pool_factory: Optional[Callable[[int], Any]] = None,
        worker_fn: Optional[Callable[..., str]] = None,
    ) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.store = RunStore(config.store_path)
        self._scale = config.effective_scale()
        self._pool_factory = pool_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        self._worker_fn = worker_fn or render_experiment
        self._pool: Optional[Any] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._cond: Optional[asyncio.Condition] = None
        self._admission_task: Optional[asyncio.Task] = None
        #: content key -> future resolving to ("ok", text) | ("error", msg)
        self._inflight: Dict[str, asyncio.Future] = {}
        self._bulk_queue: Deque[asyncio.Event] = deque()
        self._busy = 0
        self._draining = False
        self._stopping = False
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the pool and the bulk admission loop (call once,
        inside the event loop)."""
        self._loop = asyncio.get_running_loop()
        self._cond = asyncio.Condition()
        self._pool = self._pool_factory(self.config.workers)
        self._admission_task = self._loop.create_task(
            self._admission_loop()
        )
        self._started_at = time.monotonic()

    async def drain(self) -> None:
        """Refuse new work; wait until everything accepted (running
        *and* queued bulk) has completed."""
        self._draining = True
        async with self._cond:
            self._cond.notify_all()
            await self._cond.wait_for(self._idle)

    async def stop(self) -> None:
        """Drain, stop the admission loop and shut the pool down."""
        await self.drain()
        self._stopping = True
        async with self._cond:
            self._cond.notify_all()
        if self._admission_task is not None:
            await self._admission_task
            self._admission_task = None
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await self._loop.run_in_executor(None, pool.shutdown, True)

    def _idle(self) -> bool:
        return (
            not self._bulk_queue and self._busy == 0 and not self._inflight
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def utilization(self) -> float:
        """In-flight dispatches over pool size (> 1.0 means the
        executor itself is queueing)."""
        return self._busy / self.config.workers

    def bulk_queue_depth(self) -> int:
        return len(self._bulk_queue)

    def healthz(self) -> Dict[str, Any]:
        """The ``/healthz`` payload."""
        return {
            "status": "draining" if self._draining else "ok",
            "version": repro_version(),
            "workers": self.config.workers,
            "bulk_cap": self.config.bulk_cap,
            "scale": self._scale.name,
            "utilization": self.utilization(),
            "bulk_queue_depth": self.bulk_queue_depth(),
            "uptime_s": time.monotonic() - self._started_at,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload."""
        snap = self.metrics.snapshot()
        snap["utilization"] = self.utilization()
        snap["busy"] = self._busy
        snap["bulk_queue_depth"] = self.bulk_queue_depth()
        snap["inflight"] = len(self._inflight)
        snap["store"] = {
            "entries": len(self.store),
            "hits": self.store.hits,
            "disk_hits": self.store.disk_hits,
            "misses": self.store.misses,
            "lease_waits": self.store.lease_waits,
        }
        return snap

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------
    async def submit(self, request: SimRequest) -> ServiceResponse:
        """Run one request through the full pipeline: validate, cache,
        coalesce, admit, compute, store."""
        counters = self.metrics.counters
        counters.requests += 1
        if request.priority == BULK:
            counters.bulk_requests += 1
        else:
            counters.interactive_requests += 1
        if self._draining:
            counters.drain_rejections += 1
            return ServiceResponse(
                503, {"status": "draining", "error": "service is draining"}
            )
        try:
            if request.experiment not in SPECS:
                raise ServiceError(
                    f"unknown experiment {request.experiment!r}; "
                    f"see 'repro list'"
                )
            scale = request.resolve_scale(self._scale)
        except ServiceError as exc:
            return ServiceResponse(
                400, {"status": "error", "error": str(exc)}
            )
        key = content_key(request.run_payload(scale))

        cached = self.store.get(key, _MISS)
        if cached is not _MISS:
            counters.cache_hits += 1
            return self._ok(request, scale, key, cached,
                            cached=True, coalesced=False, elapsed=0.0)

        if key in self._inflight:
            counters.coalesced_hits += 1
            outcome, value = await asyncio.shield(self._inflight[key])
            if outcome != "ok":
                return ServiceResponse(
                    500, {"status": "error", "error": value}
                )
            return self._ok(request, scale, key, value,
                            cached=False, coalesced=True, elapsed=0.0)

        rejection = self._backpressure(request)
        if rejection is not None:
            counters.rejections += 1
            return rejection

        future = self._loop.create_future()
        self._inflight[key] = future
        started = time.monotonic()
        try:
            if request.priority == BULK:
                await self._await_bulk_admission()
            else:
                self._busy += 1
            counters.admits += 1
            try:
                text = await self._loop.run_in_executor(
                    self._pool,
                    self._worker_fn,
                    request.experiment,
                    scale,
                    self.config.store_path,
                    self.config.check_invariants,
                )
            finally:
                self._busy -= 1
                await self._notify()
        except asyncio.CancelledError:
            # Never strand coalesced waiters on an unresolvable future.
            future.set_result(("error", "computation cancelled"))
            raise
        except Exception as exc:  # noqa: BLE001 - boundary to workers
            counters.failures += 1
            future.set_result(("error", f"{type(exc).__name__}: {exc}"))
            return ServiceResponse(
                500,
                {"status": "error",
                 "error": f"{type(exc).__name__}: {exc}"},
            )
        else:
            elapsed = time.monotonic() - started
            counters.computes += 1
            self.store.put(key, text)
            self.metrics.record_latency(request.priority, elapsed)
            future.set_result(("ok", text))
            return self._ok(request, scale, key, text,
                            cached=False, coalesced=False, elapsed=elapsed)
        finally:
            self._inflight.pop(key, None)
            await self._notify()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _cap_allows(self) -> bool:
        """Would admitting one more bulk job keep utilization at or
        below the cap?"""
        return (
            (self._busy + 1) / self.config.workers
            <= self.config.bulk_cap + 1e-9
        )

    async def _await_bulk_admission(self) -> None:
        """Queue a bulk ticket and wait for the admission loop to
        grant it (the grant reserves the pool slot)."""
        ticket = asyncio.Event()
        async with self._cond:
            self._bulk_queue.append(ticket)
            self._cond.notify_all()
        await ticket.wait()

    async def _admission_loop(self) -> None:
        """Grant queued bulk tickets whenever the cap leaves a gap —
        the service-side interstice scheduler."""
        while True:
            async with self._cond:
                while True:
                    if self._stopping and not self._bulk_queue:
                        return
                    if self._bulk_queue and self._cap_allows():
                        break
                    if self._bulk_queue:
                        self.metrics.counters.cap_deferrals += 1
                    await self._cond.wait()
                ticket = self._bulk_queue.popleft()
                self._busy += 1  # reserve the slot before handing off
                ticket.set()

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Backpressure
    # ------------------------------------------------------------------
    def _backpressure(
        self, request: SimRequest
    ) -> Optional[ServiceResponse]:
        """A 429-style rejection when the request's queue is full,
        with ``retry_after`` estimated from queue depth and observed
        service time."""
        if request.priority == BULK:
            depth = len(self._bulk_queue)
            if depth < self.config.max_queue:
                return None
            label = "bulk queue full"
        else:
            depth = self._busy - self.config.workers
            if depth < self.config.max_backlog:
                return None
            label = "interactive backlog full"
        retry_after = self._retry_after(request.priority, depth)
        return ServiceResponse(
            429,
            {"status": "rejected", "error": label,
             "retry_after_s": retry_after},
            retry_after=retry_after,
        )

    def _retry_after(self, priority: str, depth: int) -> float:
        """Expected seconds until the queue has room: depth jobs at
        the observed mean service time across ``workers`` lanes."""
        mean = self.metrics.latency[priority].mean
        if mean <= 0.0:
            mean = self.metrics.latency[INTERACTIVE].mean or 1.0
        return max(1.0, depth * mean / self.config.workers)

    # ------------------------------------------------------------------
    def _ok(
        self,
        request: SimRequest,
        scale: ExperimentScale,
        key: str,
        text: str,
        *,
        cached: bool,
        coalesced: bool,
        elapsed: float,
    ) -> ServiceResponse:
        return ServiceResponse(
            200,
            {
                "status": "ok",
                "experiment": request.experiment,
                "scale": scale.name,
                "seed": scale.seed,
                "priority": request.priority,
                "cached": cached,
                "coalesced": coalesced,
                "elapsed_s": elapsed,
                "key": key,
                "result": text,
            },
        )


#: Private cache-miss sentinel (None is a legal stored value).
_MISS = object()
