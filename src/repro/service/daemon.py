"""The simulation service core: admission control over a worker pool.

:class:`SimulationService` is the asyncio orchestrator behind ``repro
serve``.  It dogfoods the paper's interstitial policy on its own
request queue:

* **interactive** requests are the natives: they go straight to the
  long-lived ``ProcessPoolExecutor`` pool (the PR-2 report executor's
  worker entry point, now shared);
* **bulk** requests are the interstitials: they wait in a bounded
  queue and are admitted one at a time, only while admitting one more
  job keeps pool utilization at or below ``bulk_cap`` — the service
  scheduling its own interstices, exactly the Table 8 utilization-cap
  loop at request granularity;
* **tenants** are the users: the bulk queue is per-tenant fair-share
  lanes (:mod:`repro.service.tenancy`) charged with actual service
  time, Retry-After is quoted from each tenant's predicted backlog
  drain, quotas bound any one tenant's footprint, and an optional
  autoscaler grows/shrinks the pool against the cap signal.

Layered on top of admission:

* **caching** — responses are rendered-table products in a
  content-addressed :class:`~repro.store.RunStore`, so a repeated
  configuration is answered without touching the pool;
* **coalescing** — concurrent requests hashing to the same content
  address share one in-flight computation (the leader computes,
  followers await its future);
* **backpressure** — a full bulk queue (or an over-committed
  interactive backlog) bounces the request with a 429-style response
  whose ``retry_after`` is computed from queue depth and observed
  latency;
* **graceful drain** — new work is refused while everything already
  accepted (queued bulk included) runs to completion;
* **durability** — with a journal configured, every accepted bulk
  request is WAL-logged (fsynced before admission) and settled with
  exactly one terminal record, so a crashed or SIGKILLed daemon
  replays and finishes its accepted backlog on restart;
* **supervision** — dispatches run under the
  :class:`~repro.service.resilience.WorkerSupervisor`: crashed or
  hung workers are replaced and the victim request retried under a
  :class:`~repro.faults.RetryPolicy`, dead-lettered once the budget
  is spent.

The event loop owns all mutable state; only worker computations leave
the loop thread.  Tests can substitute the pool and the worker
function (``pool_factory`` / ``worker_fn``) to drive admission timing
deterministically without real simulations.  See ``DESIGN.md`` §12
for the failure semantics.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from repro.errors import ConfigurationError, DeadLetterError, ServiceError
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.executor import render_experiment
from repro.experiments.registry import SPECS
from repro.faults import RetryPolicy
from repro.service.metrics import ServiceMetrics
from repro.service.requests import (
    BULK,
    ServiceResponse,
    SimRequest,
)
from repro.service.resilience import (
    COMPLETED,
    DEAD_LETTERED,
    DEFAULT_SERVICE_RETRY,
    FAILED,
    BulkJournal,
    WorkerSupervisor,
)
from repro.service.tenancy import (
    DEFAULT_TENANT_HALF_LIFE_S,
    TenantAdmission,
    TenantQuota,
    WorkerAutoscaler,
)
from repro.store import RunStore, content_key
from repro.version import repro_version


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance.

    Parameters
    ----------
    workers:
        Worker-pool processes (the "machine size" the cap is over).
    bulk_cap:
        Utilization cap for bulk admission in ``(0, 1]``: a bulk job
        is admitted only while ``(busy + 1) / workers <= bulk_cap``.
        ``1.0`` disables the policy (bulk may fill the pool).
    max_queue:
        Bulk queue bound; arrivals beyond it are rejected with
        backpressure.
    max_backlog:
        Interactive overcommit bound: interactive requests are
        rejected once more than ``workers + max_backlog`` dispatches
        are in flight.
    scale:
        Default :class:`ExperimentScale` for requests that name none.
    store_path:
        Optional directory for the shared on-disk run store (response
        cache *and* the workers' simulation-product cache).
    check_invariants:
        Run worker simulations with the engine validator enabled.
    journal_path:
        Optional path for the durable bulk-request journal (WAL).
        Accepted bulk requests are fsynced here before admission and
        replayed on the next start, so a crashed daemon resumes its
        queued work.  ``None`` disables journaling.
    request_timeout:
        Per-request worker deadline in seconds; a dispatch running
        longer is treated as hung — its pool is replaced and the
        request retried.  ``None`` disables deadlines.
    retry:
        :class:`~repro.faults.RetryPolicy` bounding re-execution of
        requests whose worker crashed or hung (dead-letter after the
        attempt budget).
    heartbeat_interval:
        Probe an idle worker pool every this many seconds; replace it
        on a failed probe.  ``None`` disables the heartbeat.
    lease_timeout:
        Stale-lease timeout for the run store's cross-process
        computation leases; ``None`` defers to ``REPRO_LEASE_TIMEOUT``
        or the store default.
    tenant_quota:
        Optional per-tenant admission limits (max in-flight dispatches
        plus max bulk-queue share); ``None`` leaves tenants bounded
        only by fair-share scheduling.
    tenant_half_life_s:
        Fair-share usage half-life for tenant scheduling, in seconds.
    autoscale_min, autoscale_max:
        Worker-pool bounds for the cap-aware autoscaler.  Both set
        enables it (``workers`` is the starting size and must lie in
        the range); both ``None`` (default) keeps the pool fixed.
    autoscale_interval:
        Autoscaler control-loop tick period in seconds.
    """

    workers: int = 2
    bulk_cap: float = 0.9
    max_queue: int = 64
    max_backlog: int = 8
    scale: Optional[ExperimentScale] = None
    store_path: Optional[str] = None
    check_invariants: bool = False
    journal_path: Optional[str] = None
    request_timeout: Optional[float] = None
    retry: RetryPolicy = DEFAULT_SERVICE_RETRY
    heartbeat_interval: Optional[float] = None
    lease_timeout: Optional[float] = None
    tenant_quota: Optional[TenantQuota] = None
    tenant_half_life_s: float = DEFAULT_TENANT_HALF_LIFE_S
    autoscale_min: Optional[int] = None
    autoscale_max: Optional[int] = None
    autoscale_interval: float = 2.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {self.workers}")
        if not (0.0 < self.bulk_cap <= 1.0):
            raise ConfigurationError(
                f"bulk_cap must be in (0, 1]: {self.bulk_cap}"
            )
        if self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1: {self.max_queue}"
            )
        if self.max_backlog < 0:
            raise ConfigurationError(
                f"max_backlog must be >= 0: {self.max_backlog}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive: {self.request_timeout}"
            )
        if (
            self.heartbeat_interval is not None
            and self.heartbeat_interval <= 0
        ):
            raise ConfigurationError(
                f"heartbeat_interval must be positive: "
                f"{self.heartbeat_interval}"
            )
        if self.lease_timeout is not None and self.lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be positive: {self.lease_timeout}"
            )
        if self.tenant_half_life_s <= 0:
            raise ConfigurationError(
                f"tenant_half_life_s must be positive: "
                f"{self.tenant_half_life_s}"
            )
        if (self.autoscale_min is None) != (self.autoscale_max is None):
            raise ConfigurationError(
                "autoscale_min and autoscale_max must be set together"
            )
        if self.autoscale_min is not None:
            if not (1 <= self.autoscale_min <= self.autoscale_max):
                raise ConfigurationError(
                    f"autoscale bounds must satisfy 1 <= min <= max: "
                    f"{self.autoscale_min}:{self.autoscale_max}"
                )
            if not (
                self.autoscale_min <= self.workers <= self.autoscale_max
            ):
                raise ConfigurationError(
                    f"workers ({self.workers}) must start inside the "
                    f"autoscale range "
                    f"{self.autoscale_min}:{self.autoscale_max}"
                )
        if self.autoscale_interval <= 0:
            raise ConfigurationError(
                f"autoscale_interval must be positive: "
                f"{self.autoscale_interval}"
            )

    def effective_scale(self) -> ExperimentScale:
        return self.scale if self.scale is not None else current_scale()


class SimulationService:
    """Admission-controlled, cached, coalescing, self-healing
    simulation runner.

    Lifecycle: construct, ``await start()`` (which replays any journal
    backlog), serve ``await submit(request)`` calls, then ``await
    stop()`` (which drains).  All coroutines must run on one event
    loop.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        pool_factory: Optional[Callable[[int], Any]] = None,
        worker_fn: Optional[Callable[..., str]] = None,
    ) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.store = RunStore(
            config.store_path, lease_timeout=config.lease_timeout
        )
        self._scale = config.effective_scale()
        self._pool_factory = pool_factory or (
            lambda n: ProcessPoolExecutor(max_workers=n)
        )
        self._worker_fn = worker_fn or render_experiment
        self.supervisor: Optional[WorkerSupervisor] = None
        self.journal: Optional[BulkJournal] = None
        if config.journal_path is not None:
            self.journal = BulkJournal(config.journal_path)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._cond: Optional[asyncio.Condition] = None
        self._admission_task: Optional[asyncio.Task] = None
        #: content key -> future resolving to ("ok", text) | ("error", msg)
        self._inflight: Dict[str, asyncio.Future] = {}
        self.tenancy = TenantAdmission(
            quota=config.tenant_quota,
            half_life_s=config.tenant_half_life_s,
        )
        #: The bulk backlog: per-tenant fair-share lanes of admission
        #: tickets (each ticket's item is an ``asyncio.Event``).
        self._bulk_queue = self.tenancy.queue
        self.autoscaler: Optional[WorkerAutoscaler] = None
        if config.autoscale_min is not None:
            self.autoscaler = WorkerAutoscaler(
                self,
                config.autoscale_min,
                config.autoscale_max,
                interval=config.autoscale_interval,
            )
        self._autoscale_task: Optional[asyncio.Task] = None
        self._replay_tasks: Set[asyncio.Task] = set()
        self._journal_sync_fut: Optional[asyncio.Future] = None
        #: Current pool size; starts at ``config.workers`` and moves
        #: only via :meth:`resize_workers`.
        self._workers = config.workers
        self._busy = 0
        self._draining = False
        self._stopping = False
        self._started_at = time.monotonic()
        #: Journal entries replayed by the most recent ``start()``.
        self.replayed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the pool, the bulk admission loop, and (with a
        journal) replay the accepted-but-unsettled backlog (call once,
        inside the event loop)."""
        self._loop = asyncio.get_running_loop()
        self._cond = asyncio.Condition()
        self.supervisor = WorkerSupervisor(
            self._pool_factory,
            self._workers,
            counters=self.metrics.counters,
            retry=self.config.retry,
            request_timeout=self.config.request_timeout,
            heartbeat_interval=self.config.heartbeat_interval,
        )
        await self.supervisor.start()
        self._admission_task = self._loop.create_task(
            self._admission_loop()
        )
        if self.autoscaler is not None:
            self._autoscale_task = self._loop.create_task(
                self.autoscaler.run()
            )
        self._started_at = time.monotonic()
        if self.journal is not None:
            self._replay_journal()

    async def drain(self) -> None:
        """Refuse new work; wait until everything accepted (running,
        queued bulk, and replayed journal entries) has completed."""
        self._draining = True
        async with self._cond:
            self._cond.notify_all()
            await self._cond.wait_for(self._idle)

    async def stop(self) -> None:
        """Drain, stop the admission loop and shut the pool down."""
        await self.drain()
        self._stopping = True
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            try:
                await self._autoscale_task
            except asyncio.CancelledError:
                pass
            self._autoscale_task = None
        async with self._cond:
            self._cond.notify_all()
        if self._admission_task is not None:
            await self._admission_task
            self._admission_task = None
        if self.supervisor is not None:
            await self.supervisor.stop()
        if self.journal is not None:
            self.journal.close()

    def _idle(self) -> bool:
        return (
            not self._bulk_queue
            and self._busy == 0
            and not self._inflight
            and not self._replay_tasks
        )

    # ------------------------------------------------------------------
    # Journal replay
    # ------------------------------------------------------------------
    def _replay_journal(self) -> None:
        """Resume every accepted-but-unsettled bulk request from the
        WAL: each replays through the normal cache/coalesce/admission
        pipeline (as bulk, so replayed work stays interstitial-class)
        and settles its journal entry exactly once."""
        entries = self.journal.recover()
        self.replayed = len(entries)
        self.metrics.counters.journal_replays += len(entries)
        for entry in entries:
            task = self._loop.create_task(self._replay_entry(entry))
            self._replay_tasks.add(task)
            task.add_done_callback(self._replay_done)

    def _replay_done(self, task: asyncio.Task) -> None:
        self._replay_tasks.discard(task)
        if not task.cancelled():
            task.exception()  # consume; failures settle inside the task
        if self._loop is not None and not self._loop.is_closed():
            self._loop.create_task(self._notify())

    async def _replay_entry(self, entry: Dict[str, Any]) -> None:
        entry_id = entry["id"]
        try:
            if entry["experiment"] not in SPECS:
                raise ServiceError(
                    f"unknown experiment {entry['experiment']!r}"
                )
            request = SimRequest(
                experiment=entry["experiment"],
                scale=entry.get("scale"),
                seed=entry.get("seed"),
                priority=BULK,
                # v1 (pre-tenancy) records have no tenant field and
                # replay as the default tenant.
                tenant=entry.get("tenant"),
            )
            scale = request.resolve_scale(self._scale)
        except (ServiceError, KeyError):
            # The journaled config no longer validates (registry or
            # scale drift across a restart): terminally failed.
            self.journal.record_settle(entry_id, FAILED)
            self.metrics.counters.failures += 1
            return
        key = content_key(request.run_payload(scale))
        cached = self.store.get(key, _MISS)
        if cached is not _MISS:
            # Completed before the crash (settle record was lost, or
            # another accepted entry computed the same key).
            self.journal.record_settle(entry_id, COMPLETED)
            return
        if key in self._inflight:
            await self._settle_from_future(entry_id, self._inflight[key])
            return
        await self._execute(request, scale, key, journal_id=entry_id)

    async def _settle_from_future(
        self, entry_id: int, future: asyncio.Future
    ) -> None:
        outcome, _value = await asyncio.shield(future)
        self.journal.record_settle(
            entry_id, COMPLETED if outcome == "ok" else FAILED
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def default_scale(self) -> ExperimentScale:
        """The scale applied to requests that name none."""
        return self._scale

    @property
    def workers(self) -> int:
        """Current worker-pool size (``config.workers`` until an
        autoscaler or a ``resize_workers`` call moves it)."""
        return self._workers

    async def resize_workers(self, n: int) -> None:
        """Resize the supervised pool to ``n`` processes.

        In-flight dispatches finish on the old pool (it is shut down
        without cancelling); new dispatches land on the replacement.
        The cap, the backpressure arithmetic, and ``bulk_slots`` all
        follow the new size immediately, and the admission loop is
        woken — growing may have opened an interstice.
        """
        if n < 1:
            raise ConfigurationError(f"workers must be >= 1: {n}")
        if n == self._workers:
            return
        if n > self._workers:
            self.metrics.counters.scale_ups += 1
        else:
            self.metrics.counters.scale_downs += 1
        self._workers = n
        if self.supervisor is not None:
            self.supervisor.resize(n)
        await self._notify()

    def utilization(self) -> float:
        """In-flight dispatches over pool size (> 1.0 means the
        executor itself is queueing)."""
        return self._busy / self._workers

    def bulk_queue_depth(self) -> int:
        return len(self._bulk_queue)

    def bulk_slots(self) -> int:
        """Concurrent bulk dispatches the utilization cap can ever
        admit: ``floor(bulk_cap * workers)``, at least 1 so bulk work
        always makes progress.  The fleet layer feeds its stealable
        backlog into the service at exactly this concurrency — enough
        to keep every interstice busy, while the rest of the backlog
        stays outside the admission queue where peers can steal it."""
        return max(
            1, int(self.config.bulk_cap * self._workers + 1e-9)
        )

    def has_cached(self, key: str) -> bool:
        """Would a request hashing to ``key`` be answered from the
        store right now?  (Fleet fast path: skip the backlog.)"""
        return key in self.store

    def is_inflight(self, key: str) -> bool:
        """Is a computation for ``key`` currently in flight?  (Fleet
        fast path: submitting now coalesces instead of queueing.)"""
        return key in self._inflight

    def healthz(self) -> Dict[str, Any]:
        """The ``/healthz`` payload."""
        payload = {
            "status": "draining" if self._draining else "ok",
            "version": repro_version(),
            "workers": self._workers,
            "bulk_cap": self.config.bulk_cap,
            "scale": self._scale.name,
            "utilization": self.utilization(),
            "bulk_queue_depth": self.bulk_queue_depth(),
            "uptime_s": time.monotonic() - self._started_at,
        }
        if self.autoscaler is not None:
            payload["autoscale"] = {
                "min": self.autoscaler.minimum,
                "max": self.autoscaler.maximum,
            }
        return payload

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload."""
        snap = self.metrics.snapshot()
        snap["utilization"] = self.utilization()
        snap["busy"] = self._busy
        snap["workers"] = self._workers
        snap["bulk_queue_depth"] = self.bulk_queue_depth()
        snap["inflight"] = len(self._inflight)
        store = self.store.counters
        snap["store"] = {
            "entries": len(self.store),
            "hits": store.hits,
            "disk_hits": store.disk_hits,
            "misses": store.misses,
            "lease_waits": store.lease_waits,
            "lease_breaks": store.lease_breaks,
            "integrity_failures": store.integrity_failures,
            "quarantined": store.quarantined,
        }
        snap["resilience"] = {
            "pool_generation": (
                self.supervisor.generation if self.supervisor else 0
            ),
            "journal_open": (
                self.journal.open_count if self.journal else 0
            ),
            "journal_torn_records": (
                self.journal.torn_records if self.journal else 0
            ),
            "journal_fsyncs": self.journal.fsyncs if self.journal else 0,
            "replayed_on_start": self.replayed,
        }
        return snap

    # ------------------------------------------------------------------
    # Request pipeline
    # ------------------------------------------------------------------
    async def submit(self, request: SimRequest) -> ServiceResponse:
        """Run one request through the full pipeline: validate, cache,
        coalesce, journal (bulk), admit, compute, store, settle."""
        counters = self.metrics.counters
        counters.requests += 1
        if request.priority == BULK:
            counters.bulk_requests += 1
        else:
            counters.interactive_requests += 1
        tenant = request.effective_tenant
        tenant_counters = self.metrics.tenant(tenant)
        tenant_counters.requests += 1
        if self._draining:
            counters.drain_rejections += 1
            return ServiceResponse(
                503, {"status": "draining", "error": "service is draining"}
            )
        try:
            if request.experiment not in SPECS:
                raise ServiceError(
                    f"unknown experiment {request.experiment!r}; "
                    f"see 'repro list'"
                )
            scale = request.resolve_scale(self._scale)
        except ServiceError as exc:
            return ServiceResponse(
                400, {"status": "error", "error": str(exc)}
            )
        key = content_key(request.run_payload(scale))

        cached = self.store.get(key, _MISS)
        if cached is not _MISS:
            counters.cache_hits += 1
            tenant_counters.accepted += 1
            tenant_counters.completed += 1
            return self._ok(request, scale, key, cached,
                            cached=True, coalesced=False, elapsed=0.0)

        if key in self._inflight:
            counters.coalesced_hits += 1
            tenant_counters.accepted += 1
            # Capture the future before the journal fsync yields: the
            # computation may finish (and pop its inflight entry)
            # during the await.
            future = self._inflight[key]
            journal_id = await self._journal_accept(request, key)
            return await self._coalesce(
                request, scale, key, future, journal_id
            )

        rejection = self._backpressure(request)
        if rejection is not None:
            counters.rejections += 1
            tenant_counters.rejections += 1
            return rejection

        tenant_counters.accepted += 1
        journal_id = await self._journal_accept(request, key)
        # The journal fsync yielded after the inflight check above; a
        # concurrent submit (or journal replay) may have registered
        # this key in the meantime — coalesce onto it instead of
        # computing twice.
        late = self._inflight.get(key)
        if late is not None:
            counters.coalesced_hits += 1
            return await self._coalesce(
                request, scale, key, late, journal_id
            )
        return await self._execute(
            request, scale, key, journal_id=journal_id
        )

    async def _coalesce(
        self,
        request: SimRequest,
        scale: ExperimentScale,
        key: str,
        future: "asyncio.Future[Any]",
        journal_id: Optional[int],
    ) -> ServiceResponse:
        """Wait on another request's in-flight computation and settle
        this request's journal entry from its outcome."""
        outcome, value = await asyncio.shield(future)
        if outcome != "ok":
            self._journal_settle(journal_id, FAILED)
            return ServiceResponse(
                500, {"status": "error", "error": value}
            )
        self._journal_settle(journal_id, COMPLETED)
        self.metrics.tenant(request.effective_tenant).completed += 1
        return self._ok(request, scale, key, value,
                        cached=False, coalesced=True, elapsed=0.0)

    async def _execute(
        self,
        request: SimRequest,
        scale: ExperimentScale,
        key: str,
        *,
        journal_id: Optional[int] = None,
    ) -> ServiceResponse:
        """Admit, compute on the supervised pool, store, and resolve
        coalesced waiters; settles ``journal_id`` (when set) with
        exactly one terminal record — except on cancellation, where
        the entry is deliberately left open for the next replay."""
        counters = self.metrics.counters
        tenant = request.effective_tenant
        tenant_counters = self.metrics.tenant(tenant)
        future = self._loop.create_future()
        self._inflight[key] = future
        started = time.monotonic()
        try:
            if request.priority == BULK:
                # The admission grant reserves both the pool slot and
                # the tenant's in-flight unit.
                await self._await_bulk_admission(tenant)
            else:
                self._busy += 1
                self.tenancy.begin_dispatch(tenant)
            counters.admits += 1
            # The estimate quoted "on dispatch": the predictor learns
            # the tenant's actual/quoted ratio against this value.
            estimate = self.metrics.estimated_service_time(
                request.priority, tenant
            )
            dispatched_at = time.monotonic()
            try:
                text = await self.supervisor.run(
                    self._worker_fn,
                    request.experiment,
                    scale,
                    self.config.store_path,
                    self.config.check_invariants,
                )
            finally:
                # Pool time is spent whatever the outcome: charge the
                # tenant's fair-share usage, teach the predictor, and
                # feed the tenant-scoped service-time reservoir.
                service_s = time.monotonic() - dispatched_at
                self._busy -= 1
                self.tenancy.end_dispatch(tenant, service_s, estimate)
                self.metrics.record_service_time(tenant, service_s)
                await self._notify()
        except asyncio.CancelledError:
            # Never strand coalesced waiters on an unresolvable
            # future.  The journal entry stays open on purpose: a
            # cancelled computation has no terminal state yet and must
            # replay after restart.
            future.set_result(("error", "computation cancelled"))
            raise
        except DeadLetterError as exc:
            counters.failures += 1
            tenant_counters.failures += 1
            future.set_result(("error", str(exc)))
            self._journal_settle(journal_id, DEAD_LETTERED)
            return ServiceResponse(
                500,
                {"status": "error", "error": str(exc),
                 "dead_lettered": True},
            )
        except Exception as exc:  # noqa: BLE001 - boundary to workers
            counters.failures += 1
            tenant_counters.failures += 1
            future.set_result(("error", f"{type(exc).__name__}: {exc}"))
            self._journal_settle(journal_id, FAILED)
            return ServiceResponse(
                500,
                {"status": "error",
                 "error": f"{type(exc).__name__}: {exc}"},
            )
        else:
            elapsed = time.monotonic() - started
            counters.computes += 1
            tenant_counters.computes += 1
            tenant_counters.completed += 1
            self.store.put(key, text)
            self.metrics.record_latency(request.priority, elapsed)
            future.set_result(("ok", text))
            self._journal_settle(journal_id, COMPLETED)
            return self._ok(request, scale, key, text,
                            cached=False, coalesced=False, elapsed=elapsed)
        finally:
            self._inflight.pop(key, None)
            await self._notify()

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    async def _journal_accept(
        self, request: SimRequest, key: str
    ) -> Optional[int]:
        """WAL-log an accepted bulk request; durable (fsynced) before
        returning.  No-op (returns None) for interactive requests or
        when journaling is disabled."""
        if self.journal is None or request.priority != BULK:
            return None
        entry_id = self.journal.record_accept(
            key=key,
            experiment=request.experiment,
            scale=request.scale,
            seed=request.seed,
            tenant=request.tenant,
        )
        await self._journal_commit()
        return entry_id

    def _journal_settle(
        self, journal_id: Optional[int], outcome: str
    ) -> None:
        if self.journal is not None and journal_id is not None:
            self.journal.record_settle(journal_id, outcome)

    async def _journal_commit(self) -> None:
        """Group-commit: every accept recorded in the same event-loop
        tick shares one fsync."""
        fut = self._journal_sync_fut
        if fut is None:
            fut = self._loop.create_future()
            self._journal_sync_fut = fut
            self._loop.call_soon(self._journal_fsync, fut)
        await fut

    def _journal_fsync(self, fut: asyncio.Future) -> None:
        self._journal_sync_fut = None
        try:
            self.journal.sync()
        except OSError as exc:
            fut.set_exception(exc)
        else:
            fut.set_result(None)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _cap_allows(self) -> bool:
        """Would admitting one more bulk job keep utilization at or
        below the cap?"""
        return (
            (self._busy + 1) / self._workers
            <= self.config.bulk_cap + 1e-9
        )

    async def _await_bulk_admission(self, tenant: str) -> None:
        """Queue a bulk ticket on the tenant's fair-share lane and
        wait for the admission loop to grant it (the grant reserves
        the pool slot and the tenant's in-flight unit)."""
        event = asyncio.Event()
        async with self._cond:
            self._bulk_queue.push(tenant, event)
            self._cond.notify_all()
        await event.wait()

    async def _admission_loop(self) -> None:
        """Grant queued bulk tickets whenever the cap leaves a gap —
        the service-side interstice scheduler.  The grant goes to the
        highest-priority eligible tenant lane (paper-priority order;
        quota-full tenants defer), not FIFO."""
        while True:
            async with self._cond:
                while True:
                    if self._stopping and not self._bulk_queue:
                        return
                    ticket = None
                    if self._bulk_queue and self._cap_allows():
                        ticket = self._bulk_queue.pop(
                            self.tenancy.eligible
                        )
                        if ticket is not None:
                            break
                    if self._bulk_queue:
                        self.metrics.counters.cap_deferrals += 1
                    await self._cond.wait()
                self._busy += 1  # reserve the slot before handing off
                self.tenancy.begin_dispatch(ticket.tenant)
                ticket.item.set()

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Backpressure
    # ------------------------------------------------------------------
    def _backpressure(
        self, request: SimRequest
    ) -> Optional[ServiceResponse]:
        """A 429-style rejection when the request's queue (or its
        tenant's quota) is full, with ``retry_after`` priced from the
        *tenant's* predicted queued work — a tenant the fair-share
        order favors is quoted a short retry even while the global
        queue is deep with someone else's flood."""
        tenant = request.effective_tenant
        quota = self.config.tenant_quota
        if request.priority == BULK:
            if quota is not None:
                limit = quota.max_backlog(self.config.max_queue)
                queued = self.tenancy.queued_of(tenant)
                if queued >= limit:
                    return self._reject_quota(
                        request,
                        tenant,
                        f"tenant {tenant!r} over bulk backlog share "
                        f"({queued}/{limit} queued)",
                    )
            if len(self._bulk_queue) < self.config.max_queue:
                return None
            label = "bulk queue full"
        else:
            if (
                quota is not None
                and self.tenancy.inflight_of(tenant)
                >= quota.max_inflight
            ):
                return self._reject_quota(
                    request,
                    tenant,
                    f"tenant {tenant!r} at max in-flight "
                    f"({quota.max_inflight})",
                )
            if self._busy - self._workers < self.config.max_backlog:
                return None
            label = "interactive backlog full"
        retry_after = self._retry_after(
            request.priority, self._tenant_depth(tenant), tenant
        )
        return ServiceResponse(
            429,
            {"status": "rejected", "error": label, "tenant": tenant,
             "retry_after_s": retry_after},
            retry_after=retry_after,
        )

    def _reject_quota(
        self, request: SimRequest, tenant: str, label: str
    ) -> ServiceResponse:
        """A tenant-scoped quota 429 (the subset of rejections the
        tenant brought on itself)."""
        self.metrics.counters.quota_rejections += 1
        self.metrics.tenant(tenant).quota_rejections += 1
        retry_after = self._retry_after(
            request.priority, self._tenant_depth(tenant), tenant
        )
        return ServiceResponse(
            429,
            {"status": "rejected", "error": label, "tenant": tenant,
             "quota": True, "retry_after_s": retry_after},
            retry_after=retry_after,
        )

    def _tenant_depth(self, tenant: str) -> int:
        """The depth term of a tenant-scoped Retry-After: the tenant's
        own queued + in-flight work, at least 1 (there is always the
        request being bounced)."""
        return max(1, self.tenancy.pending_of(tenant))

    def _retry_after(
        self, priority: str, depth: int, tenant: Optional[str] = None
    ) -> float:
        """Expected seconds until ``depth`` jobs drain across
        ``workers`` lanes, each priced at the predictor-corrected
        per-request service time.  With a tenant, the base estimate is
        the tenant's own observed mean scaled by its learned
        actual/quoted ratio; without one (or before any history), the
        chain degrades to the pre-tenancy observed-latency heuristic.
        Always finite and >= 1, even on a fresh daemon whose
        reservoirs are empty."""
        base = self.metrics.estimated_service_time(priority, tenant)
        per_request = self.tenancy.predicted_service_time(tenant, base)
        return max(1.0, max(depth, 0) * per_request / self._workers)

    # ------------------------------------------------------------------
    def _ok(
        self,
        request: SimRequest,
        scale: ExperimentScale,
        key: str,
        text: str,
        *,
        cached: bool,
        coalesced: bool,
        elapsed: float,
    ) -> ServiceResponse:
        return ServiceResponse(
            200,
            {
                "status": "ok",
                "experiment": request.experiment,
                "scale": scale.name,
                "seed": scale.seed,
                "priority": request.priority,
                "cached": cached,
                "coalesced": coalesced,
                "elapsed_s": elapsed,
                "key": key,
                "result": text,
            },
        )


#: Private cache-miss sentinel (None is a legal stored value).
_MISS = object()
