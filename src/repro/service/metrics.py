"""Service-side metrics: request counters plus per-class latency.

Counters live in :class:`repro.obs.ServiceCounters` (the obs layer owns
counter semantics across the codebase); this module adds the latency
side — a bounded reservoir per priority class with the percentile
arithmetic the ``/metrics`` endpoint and the service bench report
(interactive p50/p99 is the paper-policy health signal: it is what the
bulk cap exists to protect).

Latency is kept at two scopes.  The *global* per-class reservoirs
measure end-to-end request latency (queue wait included) — the health
signal.  The *per-tenant* reservoirs record pure pool service time and
feed :meth:`ServiceMetrics.estimated_service_time`, so one tenant's
heavy sweeps no longer inflate the Retry-After quoted to another
tenant: each tenant's backpressure is priced from its own history,
falling back to the global chain only until it has one."""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional

from repro.obs import ServiceCounters, TenantCounters
from repro.service.requests import PRIORITIES

#: Assumed mean service time (seconds) when no class has observed a
#: single completed request yet — a fresh daemon under immediate bulk
#: load quotes Retry-After from this instead of 0 or NaN.
DEFAULT_SERVICE_TIME_S = 1.0


def percentile(samples: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0 < q <= 100) of ``samples`` by the
    nearest-rank method; ``0.0`` for an empty sample set."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    if not (0.0 < q <= 100.0):
        raise ValueError(f"percentile q must be in (0, 100]: {q}")
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


class LatencyStats:
    """Bounded latency reservoir for one priority class.

    Keeps the most recent ``maxlen`` samples for percentile queries
    while counting and summing every sample ever recorded (so mean and
    count do not forget history the reservoir evicted).
    """

    def __init__(self, maxlen: int = 2048) -> None:
        self._samples: Deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        if not math.isfinite(seconds) or seconds < 0.0:
            # A non-finite or negative sample (clock weirdness, a
            # poisoned caller) would corrupt the mean forever; drop it.
            return
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        return percentile(self._samples, q)

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.quantile(50.0),
            "p99_s": self.quantile(99.0),
        }


class ServiceMetrics:
    """Everything the service measures about itself: one
    :class:`~repro.obs.ServiceCounters` registry plus per-class
    :class:`LatencyStats`."""

    def __init__(self) -> None:
        self.counters = ServiceCounters()
        self.latency: Dict[str, LatencyStats] = {
            priority: LatencyStats() for priority in PRIORITIES
        }
        #: tenant id -> request counters (created on first sight).
        self.tenants: Dict[str, TenantCounters] = {}
        #: tenant id -> pure-service-time reservoir (all classes; a
        #: tenant's pool cost is class-independent).
        self._tenant_service: Dict[str, LatencyStats] = {}

    def tenant(self, name: str) -> TenantCounters:
        """The (get-or-create) counter registry for one tenant."""
        counters = self.tenants.get(name)
        if counters is None:
            counters = TenantCounters()
            self.tenants[name] = counters
        return counters

    def record_latency(self, priority: str, seconds: float) -> None:
        self.latency[priority].record(seconds)

    def record_service_time(self, tenant: str, seconds: float) -> None:
        """Record the pure pool seconds one of ``tenant``'s dispatches
        consumed (no queue wait — the quantity Retry-After arithmetic
        multiplies by queue depth)."""
        stats = self._tenant_service.get(tenant)
        if stats is None:
            stats = LatencyStats()
            self._tenant_service[tenant] = stats
        stats.record(seconds)

    def estimated_service_time(
        self, priority: str, tenant: Optional[str] = None
    ) -> float:
        """Best available mean service time: the tenant's own observed
        mean first (when ``tenant`` is given and has history), then the
        ``priority`` class's global mean, then any other class's, then
        :data:`DEFAULT_SERVICE_TIME_S`.  Always finite and positive —
        this is what backpressure Retry-After arithmetic divides and
        multiplies with, so an empty reservoir on a fresh daemon must
        not surface as 0 or NaN."""
        ordered = []
        if tenant is not None:
            scoped = self._tenant_service.get(tenant)
            if scoped is not None:
                ordered.append(scoped)
        ordered.append(self.latency[priority])
        ordered.extend(
            stats
            for name, stats in self.latency.items()
            if name != priority
        )
        for stats in ordered:
            mean = stats.mean
            if math.isfinite(mean) and mean > 0.0:
                return mean
        return DEFAULT_SERVICE_TIME_S

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view for the ``/metrics`` endpoint."""
        return {
            "counters": self.counters.as_dict(),
            "latency": {
                priority: stats.snapshot()
                for priority, stats in self.latency.items()
            },
            "tenants": {
                name: {
                    "counters": counters.as_dict(),
                    "service_time": (
                        self._tenant_service[name].snapshot()
                        if name in self._tenant_service
                        else LatencyStats().snapshot()
                    ),
                }
                for name, counters in sorted(self.tenants.items())
            },
        }
