"""Opt-in observability for the simulation engine.

Three orthogonal instruments, all zero-overhead unless requested:

* :class:`TraceRecorder` — structured per-event records of engine
  behavior (:class:`NullRecorder` default, :class:`MemoryRecorder` for
  in-process analysis/tests, buffered :class:`JsonlRecorder` for
  byte-deterministic on-disk traces, the substrate of the golden-trace
  regression suite);
* :class:`Counters` — always-on integer event counters surfaced on
  ``SimResult.counters`` and mergeable across runs/experiments
  (:class:`ServiceCounters` is the same contract for the serving
  daemon's request pipeline, surfaced by its ``/metrics`` endpoint);
* :class:`PhaseTimers` — ``perf_counter``-based wall-clock accounting
  of the engine's hot phases, behind ``repro profile <experiment>``.

The package is a dependency leaf: nothing here imports the simulator,
so ``repro.sim`` (and everything above it) can import ``repro.obs``
freely.
"""

from repro.obs.counters import (
    Counters,
    ServiceCounters,
    StoreCounters,
    TenantCounters,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceRecord,
    TraceRecorder,
)
from repro.obs.timers import PhaseStat, PhaseTimers

__all__ = [
    "Counters",
    "ServiceCounters",
    "StoreCounters",
    "TenantCounters",
    "TraceRecord",
    "TraceRecorder",
    "NullRecorder",
    "MemoryRecorder",
    "JsonlRecorder",
    "NULL_RECORDER",
    "PhaseStat",
    "PhaseTimers",
]
