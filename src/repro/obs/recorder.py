"""Structured event tracing for the engine.

The engine emits one :class:`TraceRecord` per semantic event — submit,
start, finish, failure (and the jobs it kills), repair, preempt,
elastic shrink/grow resizes, requeue, fault-throttled pass, scheduling
pass, plus ``run_start`` / ``run_end`` boundaries — through a
:class:`TraceRecorder`.  Because
every field of a record is derived from deterministic simulation state
(event times, job ids, queue depth, busy CPUs), the serialized trace of
a seeded configuration is byte-for-bit reproducible: the golden-trace
regression suite (``tests/obs``) pins exactly that.

The default :class:`NullRecorder` reduces the engine's tracing cost to
one attribute check per emission site, so leaving tracing off is free.
"""

from __future__ import annotations

import abc
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, TextIO, Union

#: Record kinds emitted by the engine, in no particular order.  Kept as
#: plain strings (not an enum) so trace files remain self-describing.
RECORD_KINDS = (
    "run_start",
    "submit",
    "start",
    "finish",
    "outage",
    "failure",
    "kill",
    "repair",
    "preempt",
    "shrink",
    "grow",
    "requeue",
    "fault_throttle",
    "sched_pass",
    "run_end",
)


@dataclass(frozen=True)
class TraceRecord:
    """One structured engine event.

    Field semantics by ``kind``:

    ==============  =====================================================
    kind            job_id / cpus / detail
    ==============  =====================================================
    run_start       cpus = machine size, detail = trace job count
    submit          the submitted job
    start           the started job
    finish          the finished job
    outage          detail = cpu delta (negative when capacity returns)
    failure         detail = failed CPUs
    kill            a job killed by that failure
    repair          detail = repaired CPUs
    preempt         a job killed to seat a blocked native head job
    shrink          a malleable job resized down for a blocked native
                    (cpus = new width, detail = old width)
    grow            a malleable job resized up into idle capacity
                    (cpus = new width, detail = old width)
    requeue         a fault-killed native re-entering the queue
    fault_throttle  a scheduling pass blocked by the fault throttle
    sched_pass      detail = jobs started during the pass
    run_end         detail = finished job count
    ==============  =====================================================

    ``queue_depth`` and ``busy_cpus``/``free_cpus`` snapshot the
    scheduler queue and cluster occupancy *after* the event applied.
    """

    time: float
    kind: str
    job_id: Optional[int] = None
    cpus: Optional[int] = None
    queue_depth: int = 0
    busy_cpus: int = 0
    free_cpus: int = 0
    detail: Optional[int] = None

    def to_json(self) -> str:
        """Compact single-line JSON with a fixed key order (the JSONL
        wire format; ``None`` fields are omitted)."""
        payload = {"t": self.time, "ev": self.kind}
        if self.job_id is not None:
            payload["job"] = self.job_id
        if self.cpus is not None:
            payload["cpus"] = self.cpus
        payload["q"] = self.queue_depth
        payload["busy"] = self.busy_cpus
        payload["free"] = self.free_cpus
        if self.detail is not None:
            payload["n"] = self.detail
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        """Parse one JSONL line back into a record."""
        payload = json.loads(line)
        return cls(
            time=float(payload["t"]),
            kind=str(payload["ev"]),
            job_id=payload.get("job"),
            cpus=payload.get("cpus"),
            queue_depth=int(payload.get("q", 0)),
            busy_cpus=int(payload.get("busy", 0)),
            free_cpus=int(payload.get("free", 0)),
            detail=payload.get("n"),
        )


class TraceRecorder(abc.ABC):
    """Sink for engine trace records.

    ``enabled`` is checked once per emission site before a record is
    even constructed, so a disabled recorder costs one attribute read
    per event — the engine's hot path never builds records it will not
    keep.
    """

    #: Whether the engine should construct and emit records at all.
    enabled: bool = True

    @abc.abstractmethod
    def record(self, rec: TraceRecord) -> None:
        """Accept one trace record."""

    def close(self) -> None:
        """Flush and release any underlying resources (no-op default)."""


class NullRecorder(TraceRecorder):
    """The zero-overhead default: drops everything.

    ``enabled`` is False, so the engine skips record construction
    entirely; :meth:`record` exists only for callers that emit
    unconditionally.
    """

    enabled = False

    def record(self, rec: TraceRecord) -> None:  # pragma: no cover - skipped
        pass


#: Shared stateless instance used as the engine default.
NULL_RECORDER = NullRecorder()


class MemoryRecorder(TraceRecorder):
    """Keeps every record in an in-process list (tests, analysis)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(self, rec: TraceRecord) -> None:
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in emission order."""
        return [r for r in self.records if r.kind == kind]

    def to_jsonl(self) -> str:
        """The trace serialized exactly as :class:`JsonlRecorder`
        would write it (one record per line, trailing newline)."""
        return "".join(r.to_json() + "\n" for r in self.records)


class JsonlRecorder(TraceRecorder):
    """Buffered JSONL writer: one compact JSON object per record.

    Parameters
    ----------
    target:
        A path (opened for writing, truncating) or an existing text
        stream (not closed by :meth:`close` unless owned).
    buffer_records:
        Lines accumulated before a write; tracing a continual run emits
        hundreds of thousands of records, so per-record writes would
        dominate the run.
    """

    def __init__(
        self,
        target: Union[str, Path, TextIO],
        buffer_records: int = 1024,
    ) -> None:
        if buffer_records <= 0:
            raise ValueError(
                f"buffer_records must be positive, got {buffer_records}"
            )
        self._owns_stream = isinstance(target, (str, Path))
        if self._owns_stream:
            self._stream: TextIO = io.open(
                target, "w", encoding="utf-8", newline="\n"
            )
        else:
            self._stream = target
        self._buffer: List[str] = []
        self._buffer_records = buffer_records
        self.n_records = 0

    def record(self, rec: TraceRecord) -> None:
        self._buffer.append(rec.to_json())
        self.n_records += 1
        if len(self._buffer) >= self._buffer_records:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines to the underlying stream."""
        if self._buffer:
            self._stream.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def close(self) -> None:
        self.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
