"""Always-on engine event counters.

:class:`Counters` is a flat integer registry the engine increments as
it processes events; each :class:`~repro.sim.results.SimResult` carries
the final values.  Increments are plain attribute adds, cheap enough to
leave on unconditionally — which is what makes them trustworthy: the
counters a test reconciles against aggregates are the ones production
runs collected too, not a parallel instrumented build.

Counters from many runs merge additively (:meth:`merge`), which is how
``repro profile`` and the experiment executor aggregate across every
simulation an experiment triggered.  ``cache_hits`` is the one field
the engine never touches: the store layer's hit count is merged in by
the aggregation helpers, so one registry describes both simulation and
memoization behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class Counters:
    """Integer event counters for one simulation run (or a merged set).

    Attributes
    ----------
    events:
        Simulator events handled (every kind, including wakes).
    scheduling_passes:
        Scheduling passes executed (one per event batch).
    submits:
        Native SUBMIT events processed.
    starts:
        Jobs allocated CPUs (native and interstitial).
    finishes:
        Jobs that ran to completion.
    requeues:
        Fault-killed natives re-entering the queue (RESUBMIT events).
    preemptions:
        Interstitial jobs killed to seat a blocked native head job.
    fault_kills:
        Jobs killed by node failures (native and interstitial).
    failures, repairs, outages, wakes:
        Capacity/wake events processed, by kind.
    backfill_starts:
        Native jobs started out of priority order (around a blocked,
        higher-priority job) by the scheduler's backfill.
    fault_throttle_passes:
        Scheduling passes during which the interstitial source was
        suppressed by its fault throttle.
    invariant_checks:
        Post-batch accounting validations executed
        (``check_invariants`` mode).
    cache_hits:
        Run-store memoization hits (merged in by the aggregation
        layer; always 0 on a single engine run).
    """

    events: int = 0
    scheduling_passes: int = 0
    submits: int = 0
    starts: int = 0
    finishes: int = 0
    requeues: int = 0
    preemptions: int = 0
    fault_kills: int = 0
    failures: int = 0
    repairs: int = 0
    outages: int = 0
    wakes: int = 0
    backfill_starts: int = 0
    fault_throttle_passes: int = 0
    invariant_checks: int = 0
    cache_hits: int = 0

    def merge(self, other: "Counters") -> "Counters":
        """Add ``other``'s counts into this registry; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Field -> value mapping in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        """True when any counter is non-zero."""
        return any(getattr(self, f.name) for f in fields(self))


@dataclass
class ServiceCounters:
    """Integer request counters for the serving daemon
    (:mod:`repro.service`), surfaced by its ``/metrics`` endpoint.

    Same contract as :class:`Counters` — always on, additive
    :meth:`merge`, stable :meth:`as_dict` order — but counting
    *requests* through the admission pipeline rather than engine
    events.

    Attributes
    ----------
    requests:
        Requests received (every class and outcome).
    interactive_requests, bulk_requests:
        Requests received, by priority class.
    cache_hits:
        Requests answered straight from the run store.
    coalesced_hits:
        Requests that joined an identical in-flight computation
        instead of starting their own.
    computes:
        Underlying simulation runs actually dispatched to the worker
        pool (the denominator coalescing and caching shrink).
    admits:
        Dispatches admitted to the worker pool (both classes).
    cap_deferrals:
        Admission passes that held queued bulk work back because the
        pool's utilization cap left no interstice.
    rejections:
        Requests bounced with backpressure (full bulk queue).
    failures:
        Dispatched computations that raised in the worker.
    drain_rejections:
        Requests refused because the service was draining.
    """

    requests: int = 0
    interactive_requests: int = 0
    bulk_requests: int = 0
    cache_hits: int = 0
    coalesced_hits: int = 0
    computes: int = 0
    admits: int = 0
    cap_deferrals: int = 0
    rejections: int = 0
    failures: int = 0
    drain_rejections: int = 0

    def merge(self, other: "ServiceCounters") -> "ServiceCounters":
        """Add ``other``'s counts into this registry; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Field -> value mapping in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        """True when any counter is non-zero."""
        return any(getattr(self, f.name) for f in fields(self))
