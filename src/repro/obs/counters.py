"""Always-on engine event counters.

:class:`Counters` is a flat integer registry the engine increments as
it processes events; each :class:`~repro.sim.results.SimResult` carries
the final values.  Increments are plain attribute adds, cheap enough to
leave on unconditionally — which is what makes them trustworthy: the
counters a test reconciles against aggregates are the ones production
runs collected too, not a parallel instrumented build.

Counters from many runs merge additively (:meth:`merge`), which is how
``repro profile`` and the experiment executor aggregate across every
simulation an experiment triggered.  ``cache_hits`` is the one field
the engine never touches: the store layer's hit count is merged in by
the aggregation helpers, so one registry describes both simulation and
memoization behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class Counters:
    """Integer event counters for one simulation run (or a merged set).

    Attributes
    ----------
    events:
        Simulator events handled (every kind, including wakes).
    scheduling_passes:
        Scheduling passes executed (one per event batch).
    submits:
        Native SUBMIT events processed.
    starts:
        Jobs allocated CPUs (native and interstitial).
    finishes:
        Jobs that ran to completion.
    requeues:
        Fault-killed natives re-entering the queue (RESUBMIT events).
    preempt_kills:
        Interstitial jobs killed to seat a blocked native head job
        (work wasted; the pre-elastic ``preemptions`` counter).
    preempt_shrinks:
        Malleable interstitial jobs *shrunk* — CPUs released to a
        blocked native with the remaining runtime re-scaled, no work
        wasted (DESIGN §16).
    grows:
        Width increases of running malleable jobs into idle capacity.
    molded_starts:
        Interstitial starts whose width was molded to free capacity at
        submit time (jobs carrying elastic width bounds).
    fault_kills:
        Jobs killed by node failures (native and interstitial).
    failures, repairs, outages, wakes:
        Capacity/wake events processed, by kind.
    backfill_starts:
        Native jobs started out of priority order (around a blocked,
        higher-priority job) by the scheduler's backfill.
    pass_skips:
        Scheduling passes the scheduler proved could start nothing and
        skipped without evaluating the queue (DESIGN §13).
    priority_rekeys:
        Full re-keys of the scheduler's priority order (one per
        fair-share charge batch that actually changed priorities).
    release_rebuilds:
        Rebuilds of the scheduler's predictor-corrected release claim
        cache (running set or learned ratios changed).
    fault_throttle_passes:
        Scheduling passes during which the interstitial source was
        suppressed by its fault throttle.
    invariant_checks:
        Post-batch accounting validations executed
        (``check_invariants`` mode).
    cache_hits:
        Run-store memoization hits (merged in by the aggregation
        layer; always 0 on a single engine run).
    """

    events: int = 0
    scheduling_passes: int = 0
    submits: int = 0
    starts: int = 0
    finishes: int = 0
    requeues: int = 0
    preempt_kills: int = 0
    preempt_shrinks: int = 0
    grows: int = 0
    molded_starts: int = 0
    fault_kills: int = 0
    failures: int = 0
    repairs: int = 0
    outages: int = 0
    wakes: int = 0
    backfill_starts: int = 0
    pass_skips: int = 0
    priority_rekeys: int = 0
    release_rebuilds: int = 0
    fault_throttle_passes: int = 0
    invariant_checks: int = 0
    cache_hits: int = 0

    @property
    def preemptions(self) -> int:
        """Back-compat alias for the pre-split counter: preemptions
        that *killed* work.  A property, not a field, so ``merge``/
        ``as_dict`` aggregation stays un-doubled."""
        return self.preempt_kills

    def merge(self, other: "Counters") -> "Counters":
        """Add ``other``'s counts into this registry; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Field -> value mapping in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        """True when any counter is non-zero."""
        return any(getattr(self, f.name) for f in fields(self))


@dataclass
class StoreCounters:
    """Integer counters for one :class:`~repro.store.RunStore`.

    Same contract as :class:`Counters` — always on, additive
    :meth:`merge`, stable :meth:`as_dict` order — but counting cache
    and coordination behavior instead of engine events.

    Attributes
    ----------
    hits:
        In-memory layer hits.
    disk_hits:
        On-disk layer hits (entry loaded and promoted to memory).
    misses:
        Lookups that fell through to a compute.
    lease_waits:
        Times this store waited on another process's in-flight
        computation lease instead of stampeding into a duplicate run.
    lease_breaks:
        Stale leases (owner presumed dead) this store broke to take
        over a computation.
    integrity_failures:
        Disk entries whose content failed SHA-256 verification (or
        could not be decoded at all).
    quarantined:
        Corrupt disk entries moved into the store's ``corrupt/``
        subdirectory instead of crashing the reader.
    peer_gets:
        Peer cache lookups served to other fleet replicas (hit or
        miss; the asking side counts hits/misses in its own
        :class:`ServiceCounters`).
    peer_puts:
        Entries replicated *into* this store by other fleet replicas
        (a non-owner computed a key this replica owns).
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    lease_waits: int = 0
    lease_breaks: int = 0
    integrity_failures: int = 0
    quarantined: int = 0
    peer_gets: int = 0
    peer_puts: int = 0

    def merge(self, other: "StoreCounters") -> "StoreCounters":
        """Add ``other``'s counts into this registry; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Field -> value mapping in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        """True when any counter is non-zero."""
        return any(getattr(self, f.name) for f in fields(self))


@dataclass
class TenantCounters:
    """Per-tenant request counters for the serving daemon's
    multi-tenant admission layer (:mod:`repro.service.tenancy`).

    Same contract as :class:`Counters` — always on, additive
    :meth:`merge`, stable :meth:`as_dict` order.  One instance exists
    per tenant id seen by a replica; ``/metrics`` surfaces them under
    a ``tenants`` section and ``/fleet/metrics`` sums them across
    replicas.

    Attributes
    ----------
    requests:
        Requests received from this tenant (every class and outcome).
    accepted:
        Requests admitted past backpressure (served from cache,
        coalesced, or dispatched).
    completed:
        Requests that returned a result (cache, coalesce, or compute).
    computes:
        Computations dispatched to the worker pool for this tenant.
    rejections:
        Requests bounced with 429 backpressure, any reason.
    quota_rejections:
        The subset of ``rejections`` caused by this tenant's own
        quota (max in-flight or max backlog share).
    failures:
        Dispatched computations that raised terminally.
    """

    requests: int = 0
    accepted: int = 0
    completed: int = 0
    computes: int = 0
    rejections: int = 0
    quota_rejections: int = 0
    failures: int = 0

    def merge(self, other: "TenantCounters") -> "TenantCounters":
        """Add ``other``'s counts into this registry; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Field -> value mapping in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        """True when any counter is non-zero."""
        return any(getattr(self, f.name) for f in fields(self))


@dataclass
class ServiceCounters:
    """Integer request counters for the serving daemon
    (:mod:`repro.service`), surfaced by its ``/metrics`` endpoint.

    Same contract as :class:`Counters` — always on, additive
    :meth:`merge`, stable :meth:`as_dict` order — but counting
    *requests* through the admission pipeline rather than engine
    events.

    Attributes
    ----------
    requests:
        Requests received (every class and outcome).
    interactive_requests, bulk_requests:
        Requests received, by priority class.
    cache_hits:
        Requests answered straight from the run store.
    coalesced_hits:
        Requests that joined an identical in-flight computation
        instead of starting their own.
    computes:
        Underlying simulation runs actually dispatched to the worker
        pool (the denominator coalescing and caching shrink).
    admits:
        Dispatches admitted to the worker pool (both classes).
    cap_deferrals:
        Admission passes that held queued bulk work back because the
        pool's utilization cap left no interstice.
    rejections:
        Requests bounced with backpressure (full bulk queue).
    failures:
        Dispatched computations that raised in the worker.
    drain_rejections:
        Requests refused because the service was draining.
    retries:
        Re-executions of a request whose worker crashed, hung past
        its deadline, or lost its pool (bounded by the service's
        :class:`~repro.faults.RetryPolicy`).
    dead_letters:
        Requests abandoned after exhausting their retry budget.
    worker_replacements:
        Times the supervisor replaced the worker pool after a crash,
        a hung request, or a failed heartbeat.
    request_timeouts:
        Dispatches that exceeded the per-request deadline.
    journal_replays:
        Accepted bulk requests recovered from the durable journal and
        re-executed after a restart.
    forwards:
        Requests this replica routed to their consistent-hash ring
        owner on another fleet replica (see
        :mod:`repro.service.fleet`).
    peer_hits:
        Computations avoided because the ring owner's cache already
        held the key (a peer lookup before compute hit).
    peer_misses:
        Peer lookups against the ring owner that found nothing (the
        asking replica then computed locally).
    peer_replications:
        Completed results this replica pushed to their ring owner's
        store (it computed a key it does not own).
    steals:
        Queued bulk requests this replica pulled from a loaded peer's
        backlog and executed itself.
    steals_granted:
        Queued bulk requests this replica handed to an idle peer.
    steal_requeues:
        Stolen entries re-enqueued locally because the thief never
        reported a result within the steal deadline.
    quota_rejections:
        Requests bounced because the *tenant* was over its quota
        (max in-flight or max backlog share); a subset of neither
        ``rejections`` nor ``drain_rejections`` — quota bounces are
        counted here and in ``rejections`` both, so ``rejections``
        stays the total 429 count.
    scale_ups, scale_downs:
        Worker-pool resizes by the cap-aware autoscaler (or a manual
        ``resize_workers`` call), by direction.
    """

    requests: int = 0
    interactive_requests: int = 0
    bulk_requests: int = 0
    cache_hits: int = 0
    coalesced_hits: int = 0
    computes: int = 0
    admits: int = 0
    cap_deferrals: int = 0
    rejections: int = 0
    failures: int = 0
    drain_rejections: int = 0
    retries: int = 0
    dead_letters: int = 0
    worker_replacements: int = 0
    request_timeouts: int = 0
    journal_replays: int = 0
    forwards: int = 0
    peer_hits: int = 0
    peer_misses: int = 0
    peer_replications: int = 0
    steals: int = 0
    steals_granted: int = 0
    steal_requeues: int = 0
    quota_rejections: int = 0
    scale_ups: int = 0
    scale_downs: int = 0

    def merge(self, other: "ServiceCounters") -> "ServiceCounters":
        """Add ``other``'s counts into this registry; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Field -> value mapping in declaration order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __bool__(self) -> bool:
        """True when any counter is non-zero."""
        return any(getattr(self, f.name) for f in fields(self))
