"""Lightweight wall-clock phase timers for the engine hot path.

:class:`PhaseTimers` accumulates ``time.perf_counter`` spans per named
phase.  The engine brackets its hot phases — event dispatch, the
scheduling pass, event-queue pops, and fault application — and hands
the same timer object to the scheduler, which brackets its incremental
maintenance work (``priority_maintenance``, ``release_timeline``), only
when a timer object is attached; the default (``timers=None``) costs
one ``is not None`` test per phase and nothing else.

Timers are *observability*, never simulation state: they hold host
wall-clock readings, are excluded from run-store keys, and must not
influence results (the differential tests in ``tests/obs`` enforce the
same property for recorders).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional


@dataclass
class PhaseStat:
    """Accumulated wall-clock for one phase."""

    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Average milliseconds per call (0.0 before any call)."""
        if self.calls == 0:
            return 0.0
        return 1000.0 * self.total_s / self.calls


class PhaseTimers:
    """Named ``perf_counter`` accumulators.

    Phases may nest as long as their names differ (the engine times
    ``fault_apply`` inside ``event_dispatch``); re-entering an already
    open phase raises to catch unbalanced instrumentation early.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, PhaseStat] = {}
        self._open: Dict[str, float] = {}

    def start(self, phase: str) -> None:
        """Open a phase span."""
        if phase in self._open:
            raise RuntimeError(f"phase {phase!r} is already open")
        self._open[phase] = perf_counter()

    def stop(self, phase: str) -> None:
        """Close a phase span and accumulate its duration."""
        try:
            t0 = self._open.pop(phase)
        except KeyError:
            raise RuntimeError(f"phase {phase!r} was never started") from None
        stat = self._stats.setdefault(phase, PhaseStat())
        stat.calls += 1
        stat.total_s += perf_counter() - t0

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, PhaseStat]:
        """Phase -> accumulated stat, in first-seen order."""
        return dict(self._stats)

    def total_seconds(self) -> float:
        """Sum of all closed spans (phases may nest, so this can exceed
        elapsed wall-clock)."""
        return sum(s.total_s for s in self._stats.values())

    def merge(self, other: "PhaseTimers") -> "PhaseTimers":
        """Fold another timer set into this one; returns self."""
        for phase, stat in other._stats.items():
            mine = self._stats.setdefault(phase, PhaseStat())
            mine.calls += stat.calls
            mine.total_s += stat.total_s
        return self

    def format(self, wall_s: Optional[float] = None) -> str:
        """Fixed-width text table of the accumulated phases.

        With ``wall_s`` (elapsed wall-clock of the profiled work) each
        phase also shows its share of that wall time; nested phases
        (``fault_apply`` inside ``event_dispatch``, the scheduler's
        maintenance phases inside ``scheduling_pass``) count toward
        both rows, so shares do not sum to 100%.
        """
        header = f"{'phase':<20} {'calls':>10} {'total s':>10} {'mean ms':>10}"
        if wall_s is not None:
            header += f" {'% wall':>8}"
        lines: List[str] = [header]
        for phase, stat in self._stats.items():
            line = (
                f"{phase:<20} {stat.calls:>10d} {stat.total_s:>10.3f} "
                f"{stat.mean_ms:>10.4f}"
            )
            if wall_s is not None:
                share = 100.0 * stat.total_s / wall_s if wall_s > 0 else 0.0
                line += f" {share:>7.1f}%"
            lines.append(line)
        if not self._stats:
            lines.append("(no phases recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{k}={v.calls}x/{v.total_s:.3f}s" for k, v in self._stats.items()
        )
        return f"PhaseTimers({inner})"
