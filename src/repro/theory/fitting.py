"""Affine fits of measured vs. theoretical makespans (paper §4.2).

The paper calibrates ``Makespan(sec) = 5256 + 1.16 x P/(NC(1-U))`` from
its Table 2 points and reports it "good to about +-17%".  We provide the
same least-squares fit plus fit diagnostics so the reproduction can
report its own intercept/slope/spread side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class AffineFit:
    """Least-squares fit ``y ~ intercept + slope * x``."""

    intercept: float
    slope: float
    r_squared: float
    max_relative_error: float
    n_points: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.intercept + self.slope * x

    def describe(self) -> str:
        return (
            f"y = {self.intercept:.0f} + {self.slope:.3f} x  "
            f"(R^2 = {self.r_squared:.3f}, max rel. err "
            f"{self.max_relative_error * 100:.0f}%, n = {self.n_points})"
        )


def fit_affine(x: Sequence[float], y: Sequence[float]) -> AffineFit:
    """Fit ``y = a + b x`` by ordinary least squares.

    ``max_relative_error`` is the worst |fit - y| / y over the sample —
    the quantity behind the paper's "+-17%" claim.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValidationError("x and y must be equal-length 1-D sequences")
    if xs.size < 2:
        raise ValidationError("need at least two points to fit a line")
    design = np.column_stack([np.ones_like(xs), xs])
    coef, _, _, _ = np.linalg.lstsq(design, ys, rcond=None)
    intercept, slope = float(coef[0]), float(coef[1])
    predicted = intercept + slope * xs
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.abs(predicted - ys) / np.where(ys != 0, ys, np.nan)
    max_rel = float(np.nanmax(rel)) if np.any(ys != 0) else 0.0
    return AffineFit(
        intercept=intercept,
        slope=slope,
        r_squared=r_squared,
        max_relative_error=max_rel,
        n_points=int(xs.size),
    )
