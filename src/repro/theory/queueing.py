"""Load vs. turnaround: the paper's opening motivation.

"The problem with high utilization is that the turnaround time for the
typical job grows exponentially as the utilization approaches 100%"
(§1, citing queueing analyses [24]).  This module provides the
reference curve — the M/M/c waiting-time formula, the standard
analytic proxy for a batch system far from saturation — and the
empirical sweep used by the ``ablation_load`` experiment to show the
simulator exhibits the same blow-up, which is why interstitial
computing (rather than simply raising native load) is the right way to
buy utilization.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving job must queue.

    Parameters
    ----------
    c:
        Number of servers.
    offered_load:
        ``a = lambda / mu`` in Erlangs; must satisfy ``a < c`` for a
        stable queue.
    """
    if c <= 0:
        raise ValidationError(f"c must be positive: {c}")
    if not (0.0 <= offered_load < c):
        raise ValidationError(
            f"offered_load must be in [0, c): {offered_load} vs c={c}"
        )
    if offered_load == 0.0:
        return 0.0
    # Iterative Erlang-B, then convert to Erlang-C (numerically stable
    # for large c, unlike the factorial form).
    b = 1.0
    for k in range(1, c + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / c
    return b / (1.0 - rho + rho * b)


def mmc_mean_wait(
    c: int, utilization: float, mean_service_s: float
) -> float:
    """Mean queueing wait of an M/M/c system at the given utilization.

    ``W_q = C(c, a) / (c mu - lambda)`` with ``a = c * utilization``.
    Returns ``inf`` at or above saturation.
    """
    if not (0.0 <= utilization):
        raise ValidationError(f"utilization must be >= 0: {utilization}")
    if mean_service_s <= 0:
        raise ValidationError(
            f"mean_service_s must be positive: {mean_service_s}"
        )
    if utilization >= 1.0:
        return math.inf
    a = c * utilization
    pc = erlang_c(c, a)
    mu = 1.0 / mean_service_s
    return pc / (c * mu * (1.0 - utilization))


def mmc_mean_expansion_factor(
    c: int, utilization: float, mean_service_s: float
) -> float:
    """Mean EF = 1 + W_q / service under the M/M/c model."""
    wait = mmc_mean_wait(c, utilization, mean_service_s)
    if math.isinf(wait):
        return math.inf
    return 1.0 + wait / mean_service_s


def wait_blowup_ratio(
    c: int, u_low: float, u_high: float, mean_service_s: float = 3600.0
) -> float:
    """How much the mean wait grows between two utilizations.

    This is the number the paper's motivation leans on: pushing native
    utilization from, say, .78 to .95 multiplies waits by an order of
    magnitude, whereas interstitial computing reaches the same machine
    utilization at unchanged *native* load.
    """
    low = mmc_mean_wait(c, u_low, mean_service_s)
    high = mmc_mean_wait(c, u_high, mean_service_s)
    if low <= 0.0:
        return math.inf
    return high / low
