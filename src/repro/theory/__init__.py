"""Analytical models from the paper's §4.2 ("Theory").

* :func:`ideal_makespan` — ``Makespan = P / (n C (1 - U))``: a project
  of ``P`` cycles drains through the machine's average spare capacity.
* :func:`breakage_factor` — the finite-job-size correction
  ``(N(1-U)/n) / floor(N(1-U)/n)``: CPUs wasted because an integral
  number of ``n``-wide jobs rarely tiles the free space exactly.
* :func:`fit_affine` — recovers the paper's empirical calibration
  ``Makespan(sec) = 5256 + 1.16 x P/(nC(1-U))`` from simulated points.
* :func:`elastic_breakage_factor` / :func:`elastic_breakage_cpus` —
  the same corrections when jobs mold into ``[min_width, max_width]``
  (only a remainder below ``min_width`` is wasted) or resize while
  running (nothing is wasted while ``min_width`` CPUs are free).
"""

from repro.theory.breakage import (
    breakage_factor,
    elastic_breakage_cpus,
    elastic_breakage_factor,
    expected_breakage_cpus,
)
from repro.theory.fitting import AffineFit, fit_affine
from repro.theory.makespan import (
    ideal_makespan,
    ideal_makespan_for,
    predicted_makespan,
)
from repro.theory.queueing import (
    erlang_c,
    mmc_mean_expansion_factor,
    mmc_mean_wait,
    wait_blowup_ratio,
)

__all__ = [
    "ideal_makespan",
    "ideal_makespan_for",
    "predicted_makespan",
    "breakage_factor",
    "expected_breakage_cpus",
    "elastic_breakage_cpus",
    "elastic_breakage_factor",
    "fit_affine",
    "AffineFit",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_expansion_factor",
    "wait_blowup_ratio",
]
