"""The constant-utilization makespan model (paper §4.2).

With a machine of ``N`` CPUs at clock ``C`` (cycles/s) running at
average native utilization ``U``, the spare capacity is ``N C (1 - U)``
cycles per second, so a project of ``P`` cycles needs::

    Makespan = P / (N C (1 - U))   seconds.

Fitting simulation results, the paper reports the affine correction
``Makespan(sec) = 5256 + 1.16 x P/(NC(1-U))`` (good to about +-17%),
the slope above one reflecting utilization dispersion and breakage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.theory.breakage import breakage_factor
from repro.units import GHZ

if TYPE_CHECKING:  # pragma: no cover
    from repro.jobs import InterstitialProject
    from repro.machines import Machine

#: The paper's fitted intercept (seconds) and slope.
PAPER_FIT_INTERCEPT_S = 5256.0
PAPER_FIT_SLOPE = 1.16


def ideal_makespan(
    project_cycles: float,
    n_cpus: int,
    clock_ghz: float,
    utilization: float,
) -> float:
    """Theoretical minimum makespan in seconds.

    Parameters
    ----------
    project_cycles:
        Project size ``P`` in cycles (not peta-cycles).
    n_cpus, clock_ghz:
        Machine size and clock.
    utilization:
        Average *native* utilization ``U`` in [0, 1).
    """
    if project_cycles < 0:
        raise ValidationError(f"project_cycles must be >= 0: {project_cycles}")
    if n_cpus <= 0 or clock_ghz <= 0:
        raise ValidationError("machine must have positive size and clock")
    if not (0.0 <= utilization < 1.0):
        raise ValidationError(
            f"utilization must be in [0, 1): {utilization}"
        )
    spare_cycles_per_s = n_cpus * clock_ghz * GHZ * (1.0 - utilization)
    return project_cycles / spare_cycles_per_s


def ideal_makespan_for(
    project: "InterstitialProject",
    machine: "Machine",
    utilization: float,
) -> float:
    """Ideal makespan of a project on a machine at utilization ``U``."""
    return ideal_makespan(
        project.cycles, machine.cpus, machine.clock_ghz, utilization
    )


def predicted_makespan(
    project: "InterstitialProject",
    machine: "Machine",
    utilization: float,
    intercept_s: float = PAPER_FIT_INTERCEPT_S,
    slope: float = PAPER_FIT_SLOPE,
    with_breakage: bool = False,
) -> float:
    """Affine-calibrated makespan prediction, optionally multiplied by
    the breakage correction for the project's job width."""
    base = intercept_s + slope * ideal_makespan_for(
        project, machine, utilization
    )
    if with_breakage:
        base *= breakage_factor(
            machine.cpus, utilization, project.cpus_per_job
        )
    return base
