"""Breakage-in-space: wasted CPUs from finite interstitial job widths.

"Only two (not three) 32 CPU jobs can fit if there are 90 available
processors, wasting 26 CPUs."  With ``N(1-U)`` CPUs free on average,
``floor(N(1-U)/n)`` jobs of width ``n`` fit, and the relative makespan
inflation is::

    breakage = (N(1-U)/n) / floor(N(1-U)/n)

Paper values (Table 3 "Theory" row): Ross 1.035, Blue Mountain 1.020,
Blue Pacific 1.346.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError


def _validate(n_cpus: int, utilization: float, job_width: int) -> None:
    if n_cpus <= 0:
        raise ValidationError(f"n_cpus must be positive: {n_cpus}")
    if not (0.0 <= utilization < 1.0):
        raise ValidationError(f"utilization must be in [0, 1): {utilization}")
    if job_width <= 0:
        raise ValidationError(f"job_width must be positive: {job_width}")


def breakage_factor(n_cpus: int, utilization: float, job_width: int) -> float:
    """Relative makespan inflation from width-``job_width`` breakage.

    Returns ``inf`` when, on average, not even one job fits in the free
    space (``floor(N(1-U)/n) == 0``) — projects that wide make progress
    only during utilization dips, so the constant-utilization model has
    no finite prediction.
    """
    _validate(n_cpus, utilization, job_width)
    avg_free = n_cpus * (1.0 - utilization)
    ratio = avg_free / job_width
    fit = math.floor(ratio)
    if fit == 0:
        return math.inf
    return ratio / fit


def expected_breakage_cpus(
    n_cpus: int, utilization: float, job_width: int
) -> float:
    """Average CPUs wasted: free CPUs not coverable by whole jobs.

    The paper notes "on average, the breakage will be half the size of
    the interstitial job, i.e. n/2" — this returns the exact value for
    the machine's mean free count; the n/2 rule is its average over
    free-CPU values.
    """
    _validate(n_cpus, utilization, job_width)
    avg_free = n_cpus * (1.0 - utilization)
    return avg_free - math.floor(avg_free / job_width) * job_width


def _validate_range(min_width: int, max_width: int) -> None:
    if min_width <= 0 or max_width <= 0:
        raise ValidationError(
            f"widths must be positive: [{min_width}, {max_width}]"
        )
    if min_width > max_width:
        raise ValidationError(
            f"min_width ({min_width}) must not exceed "
            f"max_width ({max_width})"
        )


def elastic_breakage_cpus(
    n_cpus: int,
    utilization: float,
    min_width: int,
    max_width: int,
    malleable: bool = False,
) -> float:
    """Average CPUs wasted when jobs mold into ``[min_width, max_width]``.

    A moldable controller tiles the mean free space ``F = N(1-U)``
    greedily widest-first: ``floor(F / max_width)`` full-width jobs,
    then one job of width ``F mod max_width`` if that remainder is at
    least ``min_width``.  Only a remainder in ``(0, min_width)`` is
    unservable and wasted.  A malleable controller additionally grows
    running jobs into any remainder, so nothing is wasted as long as at
    least ``min_width`` CPUs are free on average.

    With ``min_width == max_width == n`` this reduces to the rigid
    :func:`expected_breakage_cpus`.
    """
    _validate(n_cpus, utilization, min_width)
    _validate_range(min_width, max_width)
    avg_free = n_cpus * (1.0 - utilization)
    if avg_free < min_width:
        # Not even the narrowest job fits on average: everything free
        # is breakage, elastic or not.
        return avg_free
    if malleable:
        return 0.0
    remainder = avg_free - math.floor(avg_free / max_width) * max_width
    return remainder if remainder < min_width else 0.0


def elastic_breakage_factor(
    n_cpus: int,
    utilization: float,
    min_width: int,
    max_width: int,
    malleable: bool = False,
) -> float:
    """Relative makespan inflation under an elastic width policy.

    The rigid factor divides the free space by the CPUs whole jobs can
    cover; elastically the covered share is ``F - waste`` with the
    waste from :func:`elastic_breakage_cpus`, so the factor is
    ``F / (F - waste)``.  Returns ``inf`` when not even a
    ``min_width``-wide job fits the average free space.  With
    ``min_width == max_width == n`` this reduces to the rigid
    :func:`breakage_factor`.
    """
    _validate(n_cpus, utilization, min_width)
    _validate_range(min_width, max_width)
    avg_free = n_cpus * (1.0 - utilization)
    waste = elastic_breakage_cpus(
        n_cpus, utilization, min_width, max_width, malleable=malleable
    )
    covered = avg_free - waste
    if covered <= 0.0:
        return math.inf
    return avg_free / covered
