"""Machine models and the paper's ASCI machine presets (Table 1)."""

from repro.machines.machine import Machine, ProcessorGroup
from repro.machines.presets import (
    blue_mountain,
    blue_pacific,
    preset,
    preset_names,
    ross,
)

__all__ = [
    "Machine",
    "ProcessorGroup",
    "ross",
    "blue_mountain",
    "blue_pacific",
    "preset",
    "preset_names",
]
