"""The paper's three ASCI machines (Table 1).

============  =========  =============  ============
              Ross       Blue Mountain  Blue Pacific
============  =========  =============  ============
Site          Sandia     Los Alamos     Livermore
CPUs          1436       4662           926
clock GHz     0.588*     0.262          0.369
TCycles       0.844      1.221          0.342
Utilization   .631       .790           .907
log days      40.7       84.2           63
log jobs      4 423      7 763          12 761
Queue system  PBS        LSF            DPCS
============  =========  =============  ============

``*`` Ross is heterogeneous: 256 CPUs @ 533 MHz + 1180 CPUs @ 600 MHz
(effective 0.588 GHz).

Each preset also records the *workload targets* (utilization, trace
length, job count) needed to calibrate the synthetic trace generators in
:mod:`repro.workload.synthetic`, since the original logs are proprietary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.machines.machine import Machine, ProcessorGroup
from repro.units import DAY


@dataclass(frozen=True)
class WorkloadTargets:
    """Aggregate statistics of a machine's native log (from Table 1 plus
    the job-mix facts reported in the paper's text)."""

    #: Average native utilization over the log.
    utilization: float
    #: Log length in seconds.
    duration_s: float
    #: Number of native jobs in the log.
    n_jobs: int
    #: Median actual runtime in seconds (paper: 0.8 h on Blue Mountain).
    median_runtime_s: float
    #: Median user estimate in seconds (paper: 6 h on Blue Mountain).
    median_estimate_s: float
    #: Largest native job width as a fraction of the machine.
    max_width_fraction: float


_TARGETS: Dict[str, WorkloadTargets] = {
    "ross": WorkloadTargets(
        utilization=0.631,
        duration_s=40.7 * DAY,
        n_jobs=4423,
        # Ross users "can submit very long jobs (on the order of weeks)";
        # widths comparable to Blue Mountain's mix scaled to 1436 CPUs.
        median_runtime_s=1.0 * 3600.0,
        median_estimate_s=8.0 * 3600.0,
        max_width_fraction=0.5,
    ),
    "blue_mountain": WorkloadTargets(
        utilization=0.790,
        duration_s=84.2 * DAY,
        n_jobs=7763,
        # Paper: median actual 0.8 h, median estimate 6 h, mean actual
        # 2.5 h, mean estimate 7.2 h.  Large, long jobs dominate area.
        median_runtime_s=0.8 * 3600.0,
        median_estimate_s=6.0 * 3600.0,
        max_width_fraction=0.5,
    ),
    "blue_pacific": WorkloadTargets(
        utilization=0.907,
        duration_s=63.0 * DAY,
        n_jobs=12761,
        # Paper: Blue Pacific natives are "relatively smaller and shorter"
        # so the machine turns over quickly despite .907 utilization.
        median_runtime_s=0.5 * 3600.0,
        median_estimate_s=4.0 * 3600.0,
        max_width_fraction=0.25,
    ),
}


def ross() -> Machine:
    """ASCI Ross at Sandia: 1436 CPUs, PBS, equal-share queueing."""
    return Machine(
        name="Ross",
        groups=(
            ProcessorGroup(256, 0.533),
            ProcessorGroup(1180, 0.600),
        ),
        site="Sandia",
        queue_algorithm="PBS",
    )


def blue_mountain() -> Machine:
    """ASCI Blue Mountain at Los Alamos: 4662 CPUs, LSF, hierarchical
    group-level fair share."""
    return Machine(
        name="Blue Mountain",
        cpus=4662,
        clock_ghz=0.262,
        site="Los Alamos",
        queue_algorithm="LSF",
    )


def blue_pacific() -> Machine:
    """ASCI Blue Pacific at Livermore (926-CPU large partition): DPCS with
    user+group fair share and time-of-day constraints."""
    return Machine(
        name="Blue Pacific",
        cpus=926,
        clock_ghz=0.369,
        site="Livermore",
        queue_algorithm="DPCS",
    )


_PRESETS: Dict[str, Callable[[], Machine]] = {
    "ross": ross,
    "blue_mountain": blue_mountain,
    "blue_pacific": blue_pacific,
}


def preset_names() -> Tuple[str, ...]:
    """Names accepted by :func:`preset` and :func:`targets`."""
    return tuple(_PRESETS)


def preset(name: str) -> Machine:
    """Look up a machine preset by name (``ross``, ``blue_mountain``,
    ``blue_pacific``)."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; choose from {preset_names()}"
        ) from None


def targets(name: str) -> WorkloadTargets:
    """Workload-calibration targets for a preset machine."""
    try:
        return _TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; choose from {preset_names()}"
        ) from None
