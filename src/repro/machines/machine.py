"""Machine (supercomputer) model.

Following the paper (§3) we "treat each machine as a collection of
identical processors": a machine is defined by a CPU count and an
*effective* clock speed.  Heterogeneous machines like Ross
(256 @ 533 MHz + 1180 @ 600 MHz) are described by
:class:`ProcessorGroup` lists from which the effective clock is the
capacity-weighted mean, so the machine's total capacity in tera-cycles
(Table 1's "TCycles" row) is preserved exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.units import GHZ, TERA


@dataclass(frozen=True)
class ProcessorGroup:
    """A homogeneous group of processors inside a machine."""

    count: int
    clock_ghz: float

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValidationError(f"count must be positive, got {self.count}")
        if not math.isfinite(self.clock_ghz) or self.clock_ghz <= 0:
            raise ValidationError(
                f"clock_ghz must be positive and finite, got {self.clock_ghz}"
            )

    @property
    def tera_cycles_per_s(self) -> float:
        """Capacity of the group in tera-cycles per second."""
        return self.count * self.clock_ghz * GHZ / TERA


class Machine:
    """A space-shared supercomputer: ``cpus`` identical processors.

    Parameters
    ----------
    name:
        Display name, e.g. ``"Blue Mountain"``.
    cpus:
        Total processor count (ignored when ``groups`` is given, in which
        case it is derived).
    clock_ghz:
        Effective clock speed in GHz (derived from ``groups`` when given).
    groups:
        Optional heterogeneous processor inventory.  The machine still
        schedules as if all CPUs were identical at the capacity-weighted
        mean clock, per the paper's simplification, but the inventory is
        kept for reporting.
    site:
        Hosting site, for reports (e.g. ``"Sandia"``).
    queue_algorithm:
        Name of the production queueing system emulated (e.g. ``"PBS"``).
    """

    def __init__(
        self,
        name: str,
        cpus: Optional[int] = None,
        clock_ghz: Optional[float] = None,
        groups: Optional[Sequence[ProcessorGroup]] = None,
        site: str = "",
        queue_algorithm: str = "",
    ) -> None:
        if groups is not None:
            groups = tuple(groups)
            if not groups:
                raise ValidationError("groups must be non-empty when given")
            derived_cpus = sum(g.count for g in groups)
            derived_clock = (
                sum(g.count * g.clock_ghz for g in groups) / derived_cpus
            )
            if cpus is not None and cpus != derived_cpus:
                raise ValidationError(
                    f"cpus={cpus} inconsistent with groups total "
                    f"{derived_cpus}"
                )
            cpus = derived_cpus
            clock_ghz = derived_clock
        if cpus is None or clock_ghz is None:
            raise ValidationError(
                "either (cpus, clock_ghz) or groups must be provided"
            )
        if cpus <= 0:
            raise ValidationError(f"cpus must be positive, got {cpus}")
        if not math.isfinite(clock_ghz) or clock_ghz <= 0:
            raise ValidationError(
                f"clock_ghz must be positive and finite, got {clock_ghz}"
            )
        self.name = name
        self.cpus = int(cpus)
        self.clock_ghz = float(clock_ghz)
        self.groups: Tuple[ProcessorGroup, ...] = (
            tuple(groups) if groups is not None
            else (ProcessorGroup(self.cpus, self.clock_ghz),)
        )
        self.site = site
        self.queue_algorithm = queue_algorithm

    # ------------------------------------------------------------------
    @property
    def tera_cycles_per_s(self) -> float:
        """Machine capacity in tera-cycles per second (Table 1 "TCycles")."""
        return sum(g.tera_cycles_per_s for g in self.groups)

    @property
    def cycles_per_s(self) -> float:
        """Machine capacity in cycles per second (N x C)."""
        return self.cpus * self.clock_ghz * GHZ

    def fits(self, cpus: int) -> bool:
        """Whether a job of ``cpus`` processors can ever run here."""
        return 0 < cpus <= self.cpus

    def scaled(self, factor: float, name: Optional[str] = None) -> "Machine":
        """Return a copy with CPU counts scaled by ``factor``.

        Used by the benchmark harness to shrink experiments while keeping
        the clock (and therefore per-job runtimes) unchanged.  Group
        structure is preserved proportionally with at least one CPU per
        group.
        """
        if factor <= 0:
            raise ValidationError(f"factor must be positive, got {factor}")
        groups = tuple(
            ProcessorGroup(max(1, round(g.count * factor)), g.clock_ghz)
            for g in self.groups
        )
        return Machine(
            name=name or f"{self.name} (x{factor:g})",
            groups=groups,
            site=self.site,
            queue_algorithm=self.queue_algorithm,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.name!r}, cpus={self.cpus}, "
            f"clock={self.clock_ghz:.3f} GHz, "
            f"capacity={self.tera_cycles_per_s:.3f} TC/s)"
        )
