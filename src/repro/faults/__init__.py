"""Fault injection: stochastic node failures, crash semantics, retries.

Two complementary downtime models exist in the simulator:

* :class:`~repro.sim.outages.OutageSchedule` — hand-scheduled *drain*
  windows (maintenance): running jobs survive, capacity shrinks.
* :class:`FaultModel` — seeded stochastic *crash* windows: the jobs on
  the failed CPUs are killed; natives are requeued per a
  :class:`RetryPolicy` while interstitials route through the
  controller's ``on_preempted``/checkpoint path.
"""

from repro.faults.model import (
    DISTRIBUTIONS,
    FaultModel,
    FaultSchedule,
    NodeFault,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "DISTRIBUTIONS",
    "FaultModel",
    "FaultSchedule",
    "NodeFault",
    "RetryPolicy",
]
