"""Stochastic node failure/repair model.

The paper's Figure 4 attributes Blue Mountain's sub-100% ceiling under
continual interstitial computing to *outages*, but the drain-style
:class:`~repro.sim.outages.OutageSchedule` never kills running work.
Real machines lose nodes mid-job; the value proposition of interstitial
computing rests on tolerating exactly that cheaply (scavenger jobs are
small, so a node crash wastes at most one small job's work, while a
wide native job loses everything and must rerun).

:class:`FaultModel` draws an alternating up/down renewal process per
node — time-between-failures from an exponential or Weibull
distribution with mean ``mtbf``, repair durations exponential with mean
``mttr`` — and compiles it into a :class:`FaultSchedule` of crash
windows.  Unlike outage windows, a fault window *kills* the jobs
running on the failed CPUs when it opens (see
:meth:`repro.sim.engine.Engine._apply_failure`).

Sampling is fully deterministic in ``(seed, machine size, horizon)``:
the same model compiled against the same machine yields bit-for-bit
identical schedules, which is what makes seeded fault-injection runs
reproducible end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import FaultError
from repro.machines import Machine

#: Supported time-between-failure distributions.
DISTRIBUTIONS = ("exponential", "weibull")

#: Salt mixed into the seed for the engine's victim-selection stream so
#: it is independent of the schedule-sampling stream.
_VICTIM_STREAM_SALT = 0xFA17


@dataclass(frozen=True)
class NodeFault:
    """One crash window: ``cpus`` processors fail at ``start`` (killing
    whatever runs on them) and return to service at ``end``."""

    start: float
    end: float
    cpus: int

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise FaultError("fault times must be finite")
        if self.end <= self.start:
            raise FaultError(
                f"fault must have positive length: [{self.start}, {self.end})"
            )
        if self.cpus <= 0:
            raise FaultError(f"fault cpus must be positive: {self.cpus}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class FaultSchedule:
    """An ordered collection of crash windows (one per node failure).

    The same shape as :class:`~repro.sim.outages.OutageSchedule` so the
    metrics layer can account fault downtime the same way, but with
    crash (kill) semantics in the engine instead of drain semantics.
    """

    def __init__(self, faults: Sequence[NodeFault] = ()) -> None:
        self._faults: List[NodeFault] = sorted(
            faults, key=lambda f: (f.start, f.end)
        )

    def __iter__(self) -> Iterator[NodeFault]:
        return iter(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __bool__(self) -> bool:
        return bool(self._faults)

    def transitions(self) -> Sequence[Tuple[float, int]]:
        """(time, cpu-delta) pairs for the engine's event queue."""
        events: List[Tuple[float, int]] = []
        for f in self._faults:
            events.append((f.start, f.cpus))
            events.append((f.end, -f.cpus))
        events.sort()
        return events

    def max_concurrent_down(self) -> int:
        """Maximum simultaneous failed CPUs across the schedule."""
        down = peak = 0
        for _, delta in self.transitions():
            down += delta
            peak = max(peak, down)
        return peak

    def down_at(self, t: float) -> int:
        """Failed CPUs at time ``t``."""
        return sum(f.cpus for f in self._faults if f.start <= t < f.end)

    def total_downtime_cpu_seconds(self) -> float:
        """Integral of failed CPUs over time (utilization accounting)."""
        return sum(f.cpus * f.duration for f in self._faults)


@dataclass(frozen=True)
class FaultModel:
    """Seeded per-node failure/repair renewal process.

    Parameters
    ----------
    mtbf:
        Mean time between failures of one *node*, in seconds.  The
        machine-level failure rate is ``n_nodes / mtbf``.
    mttr:
        Mean time to repair one node, in seconds (exponential).
    cpus_per_node:
        CPUs lost per node failure.  Nodes partition the machine:
        ``n_nodes = machine.cpus // cpus_per_node`` (a trailing partial
        node is ignored).
    distribution:
        ``"exponential"`` (memoryless) or ``"weibull"`` (ageing;
        ``shape > 1`` clusters failures, matching observed burstiness
        on large machines).
    shape:
        Weibull shape parameter; ignored for exponential.
    seed:
        Root seed for both the schedule sampling stream and the
        engine's victim-selection stream.
    """

    mtbf: float
    mttr: float = 3600.0
    cpus_per_node: int = 1
    distribution: str = "exponential"
    shape: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not math.isfinite(self.mtbf) or self.mtbf <= 0:
            raise FaultError(f"mtbf must be positive and finite: {self.mtbf}")
        if not math.isfinite(self.mttr) or self.mttr <= 0:
            raise FaultError(f"mttr must be positive and finite: {self.mttr}")
        if self.cpus_per_node <= 0:
            raise FaultError(
                f"cpus_per_node must be positive: {self.cpus_per_node}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise FaultError(
                f"distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if not math.isfinite(self.shape) or self.shape <= 0:
            raise FaultError(f"shape must be positive and finite: {self.shape}")

    # ------------------------------------------------------------------
    def n_nodes(self, machine: Machine) -> int:
        """Number of independent failure domains on ``machine``."""
        nodes = machine.cpus // self.cpus_per_node
        if nodes <= 0:
            raise FaultError(
                f"cpus_per_node={self.cpus_per_node} exceeds "
                f"{machine.name}'s {machine.cpus} CPUs"
            )
        return nodes

    def sample(self, machine: Machine, until: float) -> FaultSchedule:
        """Compile the failure/repair process into crash windows.

        Failures are drawn per node over ``[0, until)``; a repair may
        complete after ``until`` (the window is kept so capacity
        accounting stays balanced).  Deterministic in
        ``(seed, machine.cpus, until)``.
        """
        if not math.isfinite(until) or until < 0:
            raise FaultError(f"until must be finite and >= 0: {until}")
        rng = np.random.default_rng((self.seed, machine.cpus))
        if self.distribution == "weibull":
            # Choose the Weibull scale so the mean equals mtbf.
            scale = self.mtbf / math.gamma(1.0 + 1.0 / self.shape)
        faults: List[NodeFault] = []
        for _ in range(self.n_nodes(machine)):
            t = 0.0
            while True:
                if self.distribution == "exponential":
                    up = float(rng.exponential(self.mtbf))
                else:
                    up = float(scale * rng.weibull(self.shape))
                t_fail = t + up
                if t_fail >= until:
                    break
                repair = float(rng.exponential(self.mttr))
                # Zero-length draws would violate NodeFault validation.
                t_repair = t_fail + max(repair, 1e-9)
                faults.append(
                    NodeFault(t_fail, t_repair, self.cpus_per_node)
                )
                t = t_repair
        return FaultSchedule(faults)

    def victim_rng(self) -> np.random.Generator:
        """Fresh generator for the engine's victim selection, seeded
        independently of (but deterministically from) the schedule
        stream."""
        return np.random.default_rng((self.seed, _VICTIM_STREAM_SALT))

    def expected_failures(self, machine: Machine, until: float) -> float:
        """Rough expected failure count (renewal rate x nodes x time)."""
        return self.n_nodes(machine) * until / (self.mtbf + self.mttr)
