"""Retry/backoff policy for fault-killed native jobs.

Dubenskaya & Polyakov (arXiv:1909.00394) argue that low-priority
scavenger workloads absorb failures via cheap resubmission; for the
*native* workload a failure is expensive (the whole job reruns) and
production batch systems requeue the job after a backoff.  The engine
applies this policy to native jobs killed by a FAILURE event:
interstitial jobs instead route through the controller's existing
``on_preempted``/checkpoint path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """Resubmission rules for fault-killed native jobs.

    Parameters
    ----------
    max_attempts:
        Maximum number of *retries* after a fault kill.  A job killed
        more than ``max_attempts`` times is dead-lettered (reported in
        ``SimResult.dead_lettered``, never resubmitted).  ``None``
        retries forever.
    base_delay:
        Backoff before the first resubmission, in seconds.
    backoff_factor:
        Multiplier applied per subsequent attempt (exponential backoff).
    max_delay:
        Cap on the backoff delay, in seconds.
    """

    max_attempts: Optional[int] = 3
    base_delay: float = 60.0
    backoff_factor: float = 2.0
    max_delay: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 0:
            raise FaultError(
                f"max_attempts must be >= 0 or None: {self.max_attempts}"
            )
        if not math.isfinite(self.base_delay) or self.base_delay < 0:
            raise FaultError(
                f"base_delay must be finite and >= 0: {self.base_delay}"
            )
        if not math.isfinite(self.backoff_factor) or self.backoff_factor < 1.0:
            raise FaultError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if not math.isfinite(self.max_delay) or self.max_delay < self.base_delay:
            raise FaultError(
                f"max_delay ({self.max_delay}) must be finite and >= "
                f"base_delay ({self.base_delay})"
            )

    # ------------------------------------------------------------------
    def allows(self, attempts: int) -> bool:
        """Whether a job that has been killed ``attempts`` times may be
        resubmitted."""
        return self.max_attempts is None or attempts <= self.max_attempts

    def delay(self, attempt: int) -> float:
        """Backoff before resubmission number ``attempt`` (1-based)."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1: {attempt}")
        return min(
            self.base_delay * self.backoff_factor ** (attempt - 1),
            self.max_delay,
        )
