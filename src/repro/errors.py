"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the simulator may raise with a single except clause while
still being able to discriminate configuration problems from runtime
scheduling problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class ValidationError(ConfigurationError):
    """A value failed validation (negative width, non-finite time, ...)."""


class SchedulingError(ReproError):
    """The scheduler reached an impossible state (double allocation, ...)."""


class CapacityError(SchedulingError):
    """An allocation was attempted that exceeds available capacity."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class FaultError(ReproError):
    """A fault-injection model was misconfigured or reached an
    impossible failure/repair state."""


class TraceFormatError(ReproError):
    """A workload trace file could not be parsed."""


class ServiceError(ReproError):
    """The serving daemon received an invalid request or reached an
    inconsistent serving state."""


class DeadLetterError(ServiceError):
    """A request was abandoned after exhausting its retry budget
    against crashed or hung workers (see
    :mod:`repro.service.resilience`)."""
