"""Job and interstitial-project models.

This package defines the two fundamental workload objects of the
reproduction:

* :class:`~repro.jobs.job.Job` — a rigid, non-preemptive batch job (native
  or interstitial) with submit time, width (CPUs), actual runtime and the
  user's (usually grossly overestimated) runtime estimate;
* :class:`~repro.jobs.project.InterstitialProject` — the paper's unit of
  interstitial work: a fixed number of identical small jobs defined by
  CPUs/job and a runtime normalized to a 1 GHz processor, sized in
  peta-cycles.
"""

from repro.jobs.job import Job, JobKind, JobState
from repro.jobs.project import InterstitialProject

__all__ = ["Job", "JobKind", "JobState", "InterstitialProject"]
