"""Interstitial project specification.

The paper defines an interstitial project as "a fixed number of identical
jobs that in turn consist of a fixed number of CPUs and a fixed run time"
(§3).  Runtimes are specified normalized to a 1 GHz processor so projects
are comparable across machines with different clock speeds, and project
*size* is measured in peta-cycles (1e15 clock ticks):

    size = n_jobs * cpus_per_job * runtime@1GHz * 1e9 cycles

e.g. the paper's 7.7 peta-cycle project is 64 000 single-CPU jobs of
120 s @ 1 GHz each (64000 * 1 * 120 * 1e9 = 7.68e15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.errors import ValidationError
from repro.jobs.job import Job, JobKind
from repro.units import GHZ, PETA, normalize_runtime

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.machine import Machine


@dataclass(frozen=True)
class InterstitialProject:
    """A fixed batch of identical small jobs to run in the interstices.

    Parameters
    ----------
    n_jobs:
        Number of identical jobs in the project.
    cpus_per_job:
        CPUs per interstitial job.  The paper studies 1..32 and recommends
        keeping this small relative to the machine's typical free capacity
        to limit breakage.
    runtime_1ghz:
        Per-job runtime in seconds, normalized to a 1 GHz processor.  On a
        machine with clock ``C`` GHz the job actually runs
        ``runtime_1ghz / C`` seconds.
    name:
        Optional label used in reports.
    user, group:
        Accounting identity under which the interstitial jobs are charged.
    min_width, max_width:
        Optional elastic width range (:mod:`repro.elastic`, DESIGN §16).
        When set, both must be set and satisfy
        ``0 < min_width <= cpus_per_job <= max_width``; elastic
        controllers then mold/resize jobs within the range while rigid
        controllers keep using ``cpus_per_job`` unchanged.
    """

    n_jobs: int
    cpus_per_job: int
    runtime_1ghz: float
    name: str = "interstitial"
    user: str = "interstitial"
    group: str = "interstitial"
    min_width: Optional[int] = None
    max_width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ValidationError(f"n_jobs must be positive, got {self.n_jobs}")
        if self.cpus_per_job <= 0:
            raise ValidationError(
                f"cpus_per_job must be positive, got {self.cpus_per_job}"
            )
        if not math.isfinite(self.runtime_1ghz) or self.runtime_1ghz <= 0:
            raise ValidationError(
                f"runtime_1ghz must be positive and finite, "
                f"got {self.runtime_1ghz}"
            )
        if (self.min_width is None) != (self.max_width is None):
            raise ValidationError(
                "min_width and max_width must be set together "
                f"(got min={self.min_width!r}, max={self.max_width!r})"
            )
        if self.min_width is not None and self.max_width is not None:
            if not 0 < self.min_width <= self.cpus_per_job <= self.max_width:
                raise ValidationError(
                    f"width range must satisfy 0 < min_width <= "
                    f"cpus_per_job <= max_width, got min={self.min_width} "
                    f"cpus_per_job={self.cpus_per_job} max={self.max_width}"
                )

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        """Total project work in clock cycles."""
        return self.n_jobs * self.cpus_per_job * self.runtime_1ghz * GHZ

    @property
    def peta_cycles(self) -> float:
        """Total project work in peta-cycles (the paper's size unit)."""
        return self.cycles / PETA

    def runtime_on(self, machine: "Machine") -> float:
        """Per-job runtime in seconds on ``machine``'s clock."""
        return normalize_runtime(self.runtime_1ghz, machine.clock_ghz)

    @classmethod
    def from_peta_cycles(
        cls,
        peta: float,
        cpus_per_job: int,
        runtime_1ghz: float,
        name: str = "interstitial",
        user: str = "interstitial",
        group: str = "interstitial",
    ) -> "InterstitialProject":
        """Build a project of (approximately) ``peta`` peta-cycles.

        The job count is rounded to the nearest integer; the realized
        :attr:`peta_cycles` may therefore differ slightly from ``peta``.
        """
        if peta <= 0:
            raise ValidationError(f"peta must be positive, got {peta}")
        per_job = cpus_per_job * runtime_1ghz * GHZ
        n_jobs = max(1, round(peta * PETA / per_job))
        return cls(
            n_jobs=n_jobs,
            cpus_per_job=cpus_per_job,
            runtime_1ghz=runtime_1ghz,
            name=name,
            user=user,
            group=group,
        )

    def width_range(self) -> Tuple[int, int]:
        """Effective ``(min, max)`` job width: the declared elastic
        range, or the degenerate rigid ``(cpus_per_job, cpus_per_job)``."""
        if self.min_width is not None and self.max_width is not None:
            return (self.min_width, self.max_width)
        return (self.cpus_per_job, self.cpus_per_job)

    def validate_for(self, machine: "Machine") -> None:
        """Reject widths the target machine cannot seat.

        Raises
        ------
        ValidationError
            When ``cpus_per_job`` (or the elastic ``max_width``) exceeds
            ``machine.cpus``.  Checked where the spec first meets a
            machine — job materialization and controller construction —
            so a too-wide project fails immediately with a clear error
            instead of deep inside the engine.
        """
        widest = max(self.cpus_per_job, self.max_width or 0)
        if widest > machine.cpus:
            raise ValidationError(
                f"project {self.name!r} requires jobs of {widest} CPUs "
                f"but {machine.name} has only {machine.cpus}; shrink "
                f"cpus_per_job/max_width or pick a larger machine"
            )

    # ------------------------------------------------------------------
    # Job materialization
    # ------------------------------------------------------------------
    def make_job(self, machine: "Machine", submit_time: float = 0.0) -> Job:
        """Create one interstitial job sized for ``machine``.

        Interstitial runtimes have zero variance (paper §4) and the
        controller knows them exactly, so ``estimate == runtime``.
        """
        self.validate_for(machine)
        runtime = self.runtime_on(machine)
        return Job(
            cpus=self.cpus_per_job,
            runtime=runtime,
            estimate=runtime,
            submit_time=submit_time,
            user=self.user,
            group=self.group,
            kind=JobKind.INTERSTITIAL,
        )

    def make_jobs(
        self, machine: "Machine", count: int, submit_time: float = 0.0
    ) -> List[Job]:
        """Create ``count`` identical interstitial jobs for ``machine``."""
        return [self.make_job(machine, submit_time) for _ in range(count)]

    def iter_jobs(
        self, machine: "Machine", submit_time: float = 0.0
    ) -> Iterator[Job]:
        """Yield all :attr:`n_jobs` jobs of the project lazily."""
        for _ in range(self.n_jobs):
            yield self.make_job(machine, submit_time)

    def describe(self) -> str:
        """Human-readable one-line summary used in benchmark tables."""
        return (
            f"{self.name}: {self.n_jobs} jobs x {self.cpus_per_job} CPU x "
            f"{self.runtime_1ghz:.0f}s@1GHz = {self.peta_cycles:.3g} PC"
        )
