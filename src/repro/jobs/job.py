"""The batch-job model shared by native and interstitial work.

Jobs in the paper's setting are *rigid* (they require a fixed number of
CPUs), *non-preemptive* (once started they run to completion) and carry a
user-supplied *estimated* runtime that the scheduler must rely on even
though it usually grossly overestimates the actual runtime (the paper
reports median estimate 6 h vs. median actual 0.8 h on Blue Mountain).

The elastic subsystem (:mod:`repro.elastic`, DESIGN §16) relaxes
rigidity for interstitial jobs only: a job may carry a
``[min_cpus, max_cpus]`` width range.  A *moldable* job picks its width
once, at start, from free capacity (its bounds are then equal); a
*malleable* job additionally resizes while running — the engine shrinks
it to seat a blocked native and grows it back into idle capacity,
re-scaling the remaining runtime so CPU-seconds of work are conserved.
Native jobs are always rigid.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ValidationError

_job_counter = itertools.count(1)


class JobKind(enum.Enum):
    """Whether a job belongs to the machine's native workload or to an
    interstitial project."""

    NATIVE = "native"
    INTERSTITIAL = "interstitial"


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    KILLED = "killed"


@dataclass
class Job:
    """A rigid, non-preemptive batch job.

    Parameters
    ----------
    cpus:
        Number of CPUs the job requires for its whole lifetime (rigid).
    runtime:
        Actual runtime in seconds.  Unknown to the scheduler until the job
        finishes; the simulator uses it to schedule the completion event.
    estimate:
        User-supplied runtime estimate in seconds.  This is the only
        runtime information the scheduler may use.  Must be ``>= runtime``
        (batch systems kill jobs at their wall-time limit, so the actual
        runtime can never exceed the estimate).
    submit_time:
        Simulated submission time in seconds.
    user, group:
        Accounting identifiers used by fair-share policies.
    kind:
        :class:`JobKind.NATIVE` or :class:`JobKind.INTERSTITIAL`.
    job_id:
        Unique identifier; auto-assigned when omitted.
    min_cpus, max_cpus:
        Optional elastic width bounds (:mod:`repro.elastic`).  ``None``
        (the default) means the job is rigid — today's behavior.  When
        set, both must be set and satisfy
        ``0 < min_cpus <= cpus <= max_cpus``; the engine may then
        resize the job between the bounds while it runs (equal bounds
        pin a molded width that can no longer change).

    Attributes
    ----------
    start_time, finish_time:
        Filled in by the simulator when the job starts / finishes.
    width_history:
        ``(time, cpus)`` segments of an elastic job's width over its
        run, maintained by the engine on resize; ``None`` for jobs that
        never resized (occupancy profiles then use the constant
        ``cpus``).
    """

    cpus: int
    runtime: float
    estimate: float
    submit_time: float = 0.0
    user: str = "user0"
    group: str = "group0"
    kind: JobKind = JobKind.NATIVE
    job_id: int = field(default_factory=lambda: next(_job_counter))
    state: JobState = field(default=JobState.CREATED, compare=False)
    start_time: Optional[float] = field(default=None, compare=False)
    finish_time: Optional[float] = field(default=None, compare=False)
    min_cpus: Optional[int] = None
    max_cpus: Optional[int] = None
    width_history: Optional[List[Tuple[float, int]]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.cpus, int) or isinstance(self.cpus, bool):
            raise ValidationError(f"cpus must be an int, got {self.cpus!r}")
        if self.cpus <= 0:
            raise ValidationError(f"cpus must be positive, got {self.cpus}")
        for name in ("runtime", "estimate", "submit_time"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValidationError(f"{name} must be finite, got {value!r}")
        if self.runtime < 0.0:
            raise ValidationError(f"runtime must be >= 0, got {self.runtime}")
        if self.estimate < self.runtime:
            raise ValidationError(
                f"estimate ({self.estimate}) must be >= runtime "
                f"({self.runtime}): batch systems kill jobs at their "
                "wall-time limit"
            )
        if self.submit_time < 0.0:
            raise ValidationError(
                f"submit_time must be >= 0, got {self.submit_time}"
            )
        if (self.min_cpus is None) != (self.max_cpus is None):
            raise ValidationError(
                "min_cpus and max_cpus must be set together "
                f"(got min={self.min_cpus!r}, max={self.max_cpus!r})"
            )
        if self.min_cpus is not None and self.max_cpus is not None:
            for name in ("min_cpus", "max_cpus"):
                value = getattr(self, name)
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValidationError(
                        f"{name} must be an int, got {value!r}"
                    )
            if not 0 < self.min_cpus <= self.cpus <= self.max_cpus:
                raise ValidationError(
                    f"elastic width bounds must satisfy 0 < min_cpus <= "
                    f"cpus <= max_cpus, got min={self.min_cpus} "
                    f"cpus={self.cpus} max={self.max_cpus}"
                )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_native(self) -> bool:
        """True for jobs belonging to the machine's native workload."""
        return self.kind is JobKind.NATIVE

    @property
    def is_interstitial(self) -> bool:
        """True for jobs belonging to an interstitial project."""
        return self.kind is JobKind.INTERSTITIAL

    @property
    def elastic(self) -> bool:
        """True when the job carries elastic width bounds."""
        return self.min_cpus is not None

    @property
    def malleable(self) -> bool:
        """True when the engine may still change the job's width (a
        non-degenerate elastic range; molded jobs have equal bounds)."""
        return (
            self.min_cpus is not None
            and self.max_cpus is not None
            and self.min_cpus < self.max_cpus
        )

    @property
    def area(self) -> float:
        """CPU-seconds of actual work (cpus x runtime).

        For a resized malleable job this is the area of the *final*
        width extended over the whole runtime — use
        :attr:`width_history` (via ``SimResult.busy_profile``) for the
        true occupancy of elastic runs.
        """
        return self.cpus * self.runtime

    @property
    def estimated_area(self) -> float:
        """CPU-seconds of requested work (cpus x estimate)."""
        return self.cpus * self.estimate

    @property
    def wait_time(self) -> float:
        """Seconds spent queued (start - submit).

        Raises
        ------
        ValueError
            If the job has not started yet.
        """
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def expansion_factor(self) -> float:
        """The paper's EF = 1 + wait / runtime.

        For zero-runtime jobs the expansion factor is defined as 1.0 when
        the job did not wait and ``inf`` otherwise.
        """
        wait = self.wait_time
        if self.runtime == 0.0:
            return 1.0 if wait == 0.0 else math.inf
        return 1.0 + wait / self.runtime

    @property
    def estimated_finish(self) -> float:
        """Scheduler-visible completion time (start + estimate).

        Only meaningful once the job has started.
        """
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time + self.estimate

    def copy_unscheduled(self) -> "Job":
        """Return a pristine copy of the job with scheduling state cleared.

        Used to replay the same trace through several simulator
        configurations without cross-contaminating results.
        """
        return Job(
            cpus=self.cpus,
            runtime=self.runtime,
            estimate=self.estimate,
            submit_time=self.submit_time,
            user=self.user,
            group=self.group,
            kind=self.kind,
            job_id=self.job_id,
            min_cpus=self.min_cpus,
            max_cpus=self.max_cpus,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, kind={self.kind.value}, "
            f"cpus={self.cpus}, runtime={self.runtime:.0f}s, "
            f"estimate={self.estimate:.0f}s, submit={self.submit_time:.0f}s, "
            f"state={self.state.value})"
        )
