"""repro — reproduction of *Interstitial Computing: Utilizing Spare
Cycles on Supercomputers* (Kleban & Clearwater, CLUSTER 2003).

A discrete-event supercomputer scheduler simulator plus the paper's
interstitial-computing controllers, calibrated ASCI-machine workload
models, analytical models and the full evaluation harness.

Quickstart::

    import numpy as np
    from repro import (
        InterstitialProject, blue_mountain, run_continual,
        synthetic_trace_for, utilization_summary,
    )

    machine = blue_mountain()
    trace = synthetic_trace_for(
        "blue_mountain", rng=np.random.default_rng(7), scale=0.1
    )
    project = InterstitialProject(
        n_jobs=10_000, cpus_per_job=32, runtime_1ghz=120.0
    )
    result, controller = run_continual(machine, trace.jobs, project,
                                       horizon=trace.duration)
    print(utilization_summary(result).describe())
"""

from repro.core import (
    InterstitialController,
    OmniscientPacking,
    pack_project,
    run_continual,
    run_native,
    run_omniscient_samples,
    run_with_controller,
    sample_short_projects,
)
from repro.core.runners import run_single_project
from repro.elastic import (
    ElasticInterstitialController,
    ElasticitySpec,
    WidthPolicy,
    elastic_controller,
)
from repro.faults import FaultModel, FaultSchedule, NodeFault, RetryPolicy
from repro.jobs import InterstitialProject, Job, JobKind
from repro.machines import (
    Machine,
    blue_mountain,
    blue_pacific,
    preset,
    ross,
)
from repro.metrics import (
    format_table,
    hourly_utilization,
    log10_wait_histogram,
    makespan_stats,
    utilization_summary,
    wait_stats,
)
from repro.obs import (
    Counters,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    PhaseTimers,
    TraceRecord,
    TraceRecorder,
)
from repro.sched import (
    QueueScheduler,
    dpcs_scheduler,
    fcfs_scheduler,
    lsf_scheduler,
    pbs_scheduler,
    scheduler_for,
)
from repro.sim import Engine, Outage, OutageSchedule, SimConfig, SimResult
from repro.theory import (
    breakage_factor,
    elastic_breakage_factor,
    fit_affine,
    ideal_makespan_for,
)
from repro.workload import (
    Trace,
    compute_stats,
    read_swf,
    synthetic_trace_for,
    write_swf,
)

from repro.version import repro_version

__version__ = repro_version()

__all__ = [
    "__version__",
    # jobs
    "Job",
    "JobKind",
    "InterstitialProject",
    # machines
    "Machine",
    "ross",
    "blue_mountain",
    "blue_pacific",
    "preset",
    # sim
    "Engine",
    "SimConfig",
    "SimResult",
    "Outage",
    "OutageSchedule",
    # faults
    "FaultModel",
    "FaultSchedule",
    "NodeFault",
    "RetryPolicy",
    # schedulers
    "QueueScheduler",
    "pbs_scheduler",
    "lsf_scheduler",
    "dpcs_scheduler",
    "fcfs_scheduler",
    "scheduler_for",
    # elastic interstitials
    "ElasticInterstitialController",
    "ElasticitySpec",
    "WidthPolicy",
    "elastic_controller",
    # interstitial core
    "InterstitialController",
    "OmniscientPacking",
    "pack_project",
    "sample_short_projects",
    "run_native",
    "run_continual",
    "run_with_controller",
    "run_single_project",
    "run_omniscient_samples",
    # workload
    "Trace",
    "synthetic_trace_for",
    "compute_stats",
    "read_swf",
    "write_swf",
    # observability
    "Counters",
    "TraceRecord",
    "TraceRecorder",
    "NullRecorder",
    "MemoryRecorder",
    "JsonlRecorder",
    "PhaseTimers",
    # metrics
    "wait_stats",
    "makespan_stats",
    "utilization_summary",
    "hourly_utilization",
    "log10_wait_histogram",
    "format_table",
    # theory
    "ideal_makespan_for",
    "breakage_factor",
    "elastic_breakage_factor",
    "fit_affine",
]
